package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// This file is the dataflow half of the engine: a worklist fixpoint solver
// over the CFGs of cfg.go with a client-supplied lattice, def-use chains for
// local value tracking, and a program-level summary store for
// interprocedural facts. Analyzers describe their lattice through the
// Problem interface; the solver owns iteration order and termination.

// A Problem is one dataflow lattice plus its transfer functions. Facts are
// opaque to the solver; nil is reserved as the unreachable bottom (the
// solver never passes nil to Transfer, FlowEdge or Join). Implementations
// must be monotone for the fixpoint to terminate within the solver's
// iteration budget.
type Problem interface {
	// Entry is the fact on function entry.
	Entry() any
	// Transfer applies one block node to the fact, returning the fact after
	// the node. Nodes are simple statements or bare condition expressions —
	// never compound statements (see cfg.go).
	Transfer(n ast.Node, fact any) any
	// FlowEdge refines the fact along a CFG edge; most problems return fact
	// unchanged. Edges out of conditionals carry the branch condition, which
	// enables ok-guard style narrowing.
	FlowEdge(e *CEdge, fact any) any
	// Join merges facts at a control-flow merge point.
	Join(a, b any) any
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal(a, b any) bool
}

// A FlowResult holds per-block facts after a Fixpoint run. In and Out are
// nil for blocks unreachable from entry.
type FlowResult struct {
	In, Out map[*CBlock]any
	// Converged is false when the iteration budget ran out before a
	// fixpoint — a non-monotone Problem. Facts are then best-effort.
	Converged bool
}

// Fixpoint solves p over g with a reverse-postorder worklist. The iteration
// budget is generous for monotone problems (each block is allowed many
// revisits) and exists only to bound non-monotone clients.
func Fixpoint(g *CFG, p Problem) *FlowResult {
	res := &FlowResult{
		In:        make(map[*CBlock]any, len(g.Blocks)),
		Out:       make(map[*CBlock]any, len(g.Blocks)),
		Converged: true,
	}
	order := g.RPO()
	pos := make(map[*CBlock]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	inList := make([]bool, len(g.Blocks))
	var work []*CBlock
	push := func(b *CBlock) {
		if _, reachable := pos[b]; reachable && !inList[b.Index] {
			inList[b.Index] = true
			work = append(work, b)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		push(order[i]) // seed in RPO (LIFO pop order)
	}

	budget := 64*len(order) + 256
	for len(work) > 0 {
		if budget--; budget < 0 {
			res.Converged = false
			break
		}
		// Pop the earliest block in RPO for near-topological processing.
		best := 0
		for i := 1; i < len(work); i++ {
			if pos[work[i]] < pos[work[best]] {
				best = i
			}
		}
		b := work[best]
		work[best] = work[len(work)-1]
		work = work[:len(work)-1]
		inList[b.Index] = false

		var in any
		if b == g.Entry {
			in = p.Entry()
		}
		for _, e := range b.Preds {
			f := res.Out[e.From]
			if f == nil {
				continue // predecessor not yet reached
			}
			f = p.FlowEdge(e, f)
			if f == nil {
				continue
			}
			if in == nil {
				in = f
			} else {
				in = p.Join(in, f)
			}
		}
		if in == nil {
			continue // unreachable (or all preds pending)
		}
		res.In[b] = in
		out := in
		for _, n := range b.Nodes {
			out = p.Transfer(n, out)
		}
		old := res.Out[b]
		if old != nil && p.Equal(old, out) {
			continue
		}
		res.Out[b] = out
		for _, e := range b.Succs {
			push(e.To)
		}
	}
	return res
}

// ---- program-level declaration index ----------------------------------

// FuncDecl resolves a function object to its declaration and owning package,
// searching every package the program loaded from source. Returns nils for
// functions without source (export data, builtins) — callers must treat
// those conservatively. Generic instantiations resolve to their origin.
func (p *Program) FuncDecl(fn *types.Func) (*Package, *ast.FuncDecl) {
	if fn == nil {
		return nil, nil
	}
	p.declOnce.Do(p.buildDeclIndex)
	if d, ok := p.declIndex[fn.Origin()]; ok {
		return d.pkg, d.decl
	}
	return nil, nil
}

type declEntry struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func (p *Program) buildDeclIndex() {
	p.declIndex = map[*types.Func]declEntry{}
	for _, pkg := range p.allLoaded() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.declIndex[fn] = declEntry{pkg, fd}
				}
			}
		}
	}
}

// ---- interprocedural summary store ------------------------------------

// Summaries memoizes per-function facts across packages of one program.
// The store is safe for concurrent use; computation happens outside the
// lock and the first stored value wins, so racing computations of the same
// (deterministic) summary are benign. Recursive computations must carry
// their own visited set: the store deliberately does not block on
// in-progress keys.
type Summaries struct {
	mu sync.Mutex
	m  map[types.Object]any
}

// Get returns the summary stored for key.
func (s *Summaries) Get(key types.Object) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Set stores the summary for key unless one exists, and returns the stored
// value (first store wins).
func (s *Summaries) Set(key types.Object, v any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[key]; ok {
		return old
	}
	if s.m == nil {
		s.m = map[types.Object]any{}
	}
	s.m[key] = v
	return v
}

// Memo returns the summary for key, computing it with f on a miss. f runs
// outside the store lock; on a race the first completed value wins.
func (s *Summaries) Memo(key types.Object, f func() any) any {
	if v, ok := s.Get(key); ok {
		return v
	}
	return s.Set(key, f())
}

// SummaryStore returns the program-wide summary store for the named
// analyzer, creating it on first use.
func (p *Program) SummaryStore(name string) *Summaries {
	p.sumMu.Lock()
	defer p.sumMu.Unlock()
	if p.sums == nil {
		p.sums = map[string]*Summaries{}
	}
	st := p.sums[name]
	if st == nil {
		st = &Summaries{}
		p.sums[name] = st
	}
	return st
}

// ---- def-use chains ----------------------------------------------------

// DefUse records, per local variable of one function, the right-hand-side
// expressions that may define it. It is a flow-insensitive over-
// approximation: a variable's value is one of its def expressions, unless
// Impure marks it (address taken, defined by range/recv/param — anything a
// syntactic RHS cannot capture).
type DefUse struct {
	// Defs maps a variable to every expression assigned to it. For
	// multi-value assignments the shared RHS (a call, type assertion or
	// receive) appears once per defined variable.
	Defs map[*types.Var][]ast.Expr
	// Impure marks variables whose definitions the chain cannot enumerate:
	// parameters, range/receive bindings, and variables whose address is
	// taken (writes may happen through the pointer).
	Impure map[*types.Var]bool
	// Params marks the function's own parameters (a subset of Impure) —
	// clients may resolve those through call sites instead.
	Params map[*types.Var]bool
}

// ComputeDefUse builds the def-use chains of fn's body.
func ComputeDefUse(info *types.Info, fn *ast.FuncDecl) *DefUse {
	du := &DefUse{
		Defs:   map[*types.Var][]ast.Expr{},
		Impure: map[*types.Var]bool{},
		Params: map[*types.Var]bool{},
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					du.Impure[v] = true
					du.Params[v] = true
				}
			}
		}
	}
	if fn.Body == nil {
		return du
	}
	defIdent := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v
		}
		return nil
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if v := defIdent(lhs); v != nil {
						if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
							du.Defs[v] = append(du.Defs[v], n.Rhs[i])
						} else {
							du.Impure[v] = true // compound assignment (+= …)
						}
					}
				}
			} else {
				// Multi-value: x, y := f() / m[k] / <-ch / v.(T).
				for _, lhs := range n.Lhs {
					if v := defIdent(lhs); v != nil {
						du.Defs[v] = append(du.Defs[v], n.Rhs[0])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v, ok := info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				switch {
				case len(n.Values) == len(n.Names):
					du.Defs[v] = append(du.Defs[v], n.Values[i])
				case len(n.Values) > 0:
					du.Defs[v] = append(du.Defs[v], n.Values[0])
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if v := defIdent(e); v != nil {
					// Remember the ranged expression so clients can reason
					// about "element of a literal set", but mark impure so
					// they must opt in to that reasoning.
					du.Defs[v] = append(du.Defs[v], n.X)
					du.Impure[v] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := defIdent(n.X); v != nil {
					du.Impure[v] = true
				}
			}
		case *ast.IncDecStmt:
			if v := defIdent(n.X); v != nil {
				du.Impure[v] = true
			}
		}
		return true
	})
	return du
}
