package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// ---- fixpoint termination on random CFGs --------------------------------

// genStmts writes a random statement list: nested ifs, loops, switches,
// selects-free control flow with break/continue/return sprinkled in. The
// generator is seeded, so failures reproduce.
func genStmts(r *rand.Rand, sb *strings.Builder, depth, inLoop int) {
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		switch c := r.Intn(10); {
		case c < 3 && depth > 0:
			fmt.Fprintf(sb, "if x > %d {\n", r.Intn(100))
			genStmts(r, sb, depth-1, inLoop)
			if r.Intn(2) == 0 {
				sb.WriteString("} else {\n")
				genStmts(r, sb, depth-1, inLoop)
			}
			sb.WriteString("}\n")
		case c < 5 && depth > 0:
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(sb, "for x < %d {\n", r.Intn(100))
			case 1:
				sb.WriteString("for i := 0; i < x; i++ {\n")
			default:
				sb.WriteString("for range ys {\n")
			}
			genStmts(r, sb, depth-1, inLoop+1)
			sb.WriteString("}\n")
		case c < 6 && depth > 0:
			fmt.Fprintf(sb, "switch x %% %d {\n", 2+r.Intn(3))
			for k := 0; k < 1+r.Intn(3); k++ {
				fmt.Fprintf(sb, "case %d:\n", k)
				genStmts(r, sb, depth-1, inLoop)
				if r.Intn(3) == 0 {
					sb.WriteString("fallthrough\n")
				}
			}
			sb.WriteString("default:\n")
			genStmts(r, sb, depth-1, inLoop)
			sb.WriteString("}\n")
		case c == 6 && inLoop > 0:
			if r.Intn(2) == 0 {
				sb.WriteString("break\n")
			} else {
				sb.WriteString("continue\n")
			}
		case c == 7:
			sb.WriteString("return\n")
		default:
			fmt.Fprintf(sb, "x += %d\n", r.Intn(9))
		}
	}
	// Keep blocks non-empty for the parser's sake.
	sb.WriteString("x++\n")
}

func genFunc(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("package p\n\nfunc f(x int, ys []int) {\n")
	genStmts(r, &sb, 3, 0)
	sb.WriteString("}\n")
	return sb.String()
}

// reachProblem is a simple monotone lattice: the fact is the set of block
// indices traversed, joined by union. Any monotone problem must converge.
type reachProblem struct{ g *CFG }

type reachFact map[int]bool

func (p *reachProblem) Entry() any { return reachFact{} }

func (p *reachProblem) Transfer(n ast.Node, fact any) any { return fact }

func (p *reachProblem) FlowEdge(e *CEdge, fact any) any {
	f := fact.(reachFact)
	if f[e.From.Index] {
		return f
	}
	out := make(reachFact, len(f)+1)
	for k := range f {
		out[k] = true
	}
	out[e.From.Index] = true
	return out
}

func (p *reachProblem) Join(a, b any) any {
	fa, fb := a.(reachFact), b.(reachFact)
	out := make(reachFact, len(fa)+len(fb))
	for k := range fa {
		out[k] = true
	}
	for k := range fb {
		out[k] = true
	}
	return out
}

func (p *reachProblem) Equal(a, b any) bool {
	fa, fb := a.(reachFact), b.(reachFact)
	if len(fa) != len(fb) {
		return false
	}
	for k := range fa {
		if !fb[k] {
			return false
		}
	}
	return true
}

// TestFixpointTerminatesRandom builds CFGs for randomly generated function
// bodies and checks the solver converges with consistent facts: for every
// edge out of a reached block, the successor's In includes the predecessor's
// contribution.
func TestFixpointTerminatesRandom(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		src := genFunc(seed)
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "gen.go", src, 0)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, src)
		}
		fd := file.Decls[0].(*ast.FuncDecl)
		g := BuildCFG(fd.Body)
		p := &reachProblem{g: g}
		res := Fixpoint(g, p)
		if !res.Converged {
			t.Fatalf("seed %d: fixpoint did not converge on a monotone problem\n%s", seed, src)
		}
		for _, b := range g.Blocks {
			out := res.Out[b]
			if out == nil {
				continue // unreachable
			}
			for _, e := range b.Succs {
				in := res.In[e.To]
				if in == nil {
					t.Fatalf("seed %d: block %d reached but successor %d has no In fact", seed, b.Index, e.To.Index)
				}
				f := in.(reachFact)
				if !f[b.Index] {
					t.Fatalf("seed %d: In[%d] missing contribution of predecessor %d", seed, e.To.Index, b.Index)
				}
				for k := range out.(reachFact) {
					if !f[k] {
						t.Fatalf("seed %d: In[%d] lost fact %d flowing from block %d", seed, e.To.Index, k, b.Index)
					}
				}
			}
		}
		// Entry is always reached.
		if res.In[g.Entry] == nil {
			t.Fatalf("seed %d: entry block has no In fact", seed)
		}
	}
}

// TestCFGDecomposedNodes checks the core CFG invariant analyzers depend on:
// block nodes are simple statements or bare expressions, never compound
// statements.
func TestCFGDecomposedNodes(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		src := genFunc(seed)
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "gen.go", src, 0)
		if err != nil {
			t.Fatal(err)
		}
		fd := file.Decls[0].(*ast.FuncDecl)
		g := BuildCFG(fd.Body)
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				switch n.(type) {
				case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
					*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt:
					t.Fatalf("seed %d: compound %T leaked into block %d nodes", seed, n, b.Index)
				}
			}
			for _, e := range b.Succs {
				if e.From != b {
					t.Fatalf("seed %d: edge bookkeeping broken: succ edge From != block", seed)
				}
			}
		}
	}
}

// TestSummariesConcurrent hammers one summary store from many goroutines;
// run under -race this checks the locking discipline, and first-store-wins
// means every reader sees one stable value per key.
func TestSummariesConcurrent(t *testing.T) {
	s := &Summaries{}
	keys := make([]types.Object, 8)
	for i := range keys {
		keys[i] = types.NewVar(token.NoPos, nil, fmt.Sprintf("k%d", i), types.Typ[types.Int])
	}
	var wg sync.WaitGroup
	got := make([]any, 64)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := keys[w%len(keys)]
			got[w] = s.Memo(k, func() any { return fmt.Sprintf("v-%d", w) })
		}(w)
	}
	wg.Wait()
	byKey := map[types.Object]any{}
	for w, v := range got {
		k := keys[w%len(keys)]
		if prev, ok := byKey[k]; ok && prev != v {
			t.Fatalf("key %v returned two values: %v and %v", k, prev, v)
		}
		byKey[k] = v
	}
	// The stored value must be stable afterwards too.
	for _, k := range keys {
		v, ok := s.Get(k)
		if !ok || v != byKey[k] {
			t.Fatalf("key %v: stored %v, Memo returned %v", k, v, byKey[k])
		}
	}
}
