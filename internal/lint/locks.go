package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// This file is the shared static-lock model: identifying sync.Mutex /
// sync.RWMutex acquisitions, summarizing the locks a function may take
// transitively (memoized program-wide in the summary store), and the
// accumulated lock-order graph. lockorder consumes the graph for inversion
// cycles; metricreg reuses the summaries to intersect scrape callbacks with
// the query hot path.

// lock mode bits.
const (
	lockExcl   = 1 << iota // Lock/TryLock
	lockShared             // RLock/TryRLock
)

// mutexMethod classifies call as a sync.Mutex/RWMutex method call and
// returns the lock's identity object (the variable or struct field holding
// the mutex), the rendered receiver expression, and the method name.
func mutexMethod(info *types.Info, call *ast.CallExpr) (*types.Var, string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", ""
	}
	fn := calleeObj(info, call)
	if fn == nil {
		return nil, "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", ""
	}
	n := namedOf(sig.Recv().Type())
	if n == nil {
		return nil, "", ""
	}
	if pkg := n.Obj().Pkg(); pkg == nil || pkg.Name() != "sync" {
		return nil, "", ""
	}
	if name := n.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return nil, "", ""
	}
	switch fn.Name() {
	case "Lock", "TryLock", "Unlock", "RLock", "TryRLock", "RUnlock":
		obj := lockObjOf(info, sel.X)
		if obj == nil {
			return nil, "", ""
		}
		return obj, types.ExprString(sel.X), fn.Name()
	}
	return nil, "", ""
}

// lockObjOf resolves a mutex receiver expression to its identity object: the
// struct field for `s.mu`, the variable for `mu`. Fields identify a lock
// across all instances of the struct — shard arrays share one identity,
// which is what a static order analysis wants.
func lockObjOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, _ := obj.(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.IndexExpr:
		return lockObjOf(info, x.X)
	case *ast.StarExpr:
		return lockObjOf(info, x.X)
	}
	return nil
}

// lockSet is a may-acquire summary: lock identity → mode bits.
type lockSet map[*types.Var]uint8

// lockSummaryOf returns the set of locks fn may acquire, directly or through
// local callees (including function literals in its body). Results are
// memoized in the program summary store; recursion is cut by the visited set
// (partial results inside a cycle are not memoized).
func lockSummaryOf(prog *Program, fn *types.Func) lockSet {
	st := prog.SummaryStore("locks")
	if v, ok := st.Get(fn); ok {
		return v.(lockSet)
	}
	res := computeLockSummary(prog, fn, map[*types.Func]bool{})
	return st.Set(fn, res).(lockSet)
}

func computeLockSummary(prog *Program, fn *types.Func, visited map[*types.Func]bool) lockSet {
	if v, ok := prog.SummaryStore("locks").Get(fn); ok {
		return v.(lockSet)
	}
	if visited[fn] {
		return nil
	}
	visited[fn] = true
	pkg, decl := prog.FuncDecl(fn)
	if decl == nil {
		return lockSet{}
	}
	out := lockSet{}
	collectLocks(prog, pkg.Info, decl.Body, out, visited)
	return out
}

// collectLocks accumulates into out every lock the node may acquire,
// following local callees through their declarations (cycles cut by
// visited). Function literals inside the node are included: they may run
// while the caller's context is live.
func collectLocks(prog *Program, info *types.Info, node ast.Node, out lockSet, visited map[*types.Func]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, _, meth := mutexMethod(info, call); obj != nil {
			switch meth {
			case "Lock", "TryLock":
				out[obj] |= lockExcl
			case "RLock", "TryRLock":
				out[obj] |= lockShared
			}
			return true
		}
		if callee := calleeObj(info, call); callee != nil {
			for o, bits := range computeLockSummary(prog, callee, visited) {
				out[o] |= bits
			}
		}
		return true
	})
}

// lockGraph is the program-wide acquired-while-held graph, accumulated
// across packages as their passes run and guarded for the concurrent
// summary-store users.
type lockGraph struct {
	mu       sync.Mutex
	edges    map[*types.Var]map[*types.Var]lockEdgeInfo
	reported map[string]bool // canonical cycle keys already diagnosed
}

type lockEdgeInfo struct {
	pos  token.Pos
	text string // rendered "held → acquired" for the message
}

// graphKey is the summary-store key of the shared lock graph. types.Object
// keys are arbitrary; the nil key is reserved for the graph itself.
func lockGraphOf(prog *Program) *lockGraph {
	st := prog.SummaryStore("lockgraph")
	v := st.Memo(nil, func() any {
		return &lockGraph{
			edges:    map[*types.Var]map[*types.Var]lockEdgeInfo{},
			reported: map[string]bool{},
		}
	})
	return v.(*lockGraph)
}

func (g *lockGraph) addEdge(from, to *types.Var, pos token.Pos, text string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.edges[from]
	if m == nil {
		m = map[*types.Var]lockEdgeInfo{}
		g.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = lockEdgeInfo{pos: pos, text: text}
	}
}

// cycle is one lock-order inversion: the node sequence n0 → n1 → … → n0.
type lockCycle struct {
	nodes []*types.Var
	key   string
}

// findCycles enumerates one cycle per strongly-entangled node set via DFS
// back edges, deduplicated by the canonical sorted node-name key.
func (g *lockGraph) findCycles(fset *token.FileSet) []lockCycle {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []lockCycle
	color := map[*types.Var]int{} // 0 white, 1 gray, 2 black
	var stack []*types.Var
	var dfs func(n *types.Var)
	dfs = func(n *types.Var) {
		color[n] = 1
		stack = append(stack, n)
		// Deterministic neighbor order by declaration position.
		var succs []*types.Var
		for s := range g.edges[n] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].Pos() < succs[j].Pos() })
		for _, s := range succs {
			switch color[s] {
			case 0:
				dfs(s)
			case 1:
				// Back edge: the stack segment from s to n is a cycle.
				i := len(stack) - 1
				for i >= 0 && stack[i] != s {
					i--
				}
				nodes := append([]*types.Var(nil), stack[i:]...)
				key := cycleKey(nodes, fset)
				if !g.reported[key] {
					g.reported[key] = true
					out = append(out, lockCycle{nodes: nodes, key: key})
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = 2
	}
	var roots []*types.Var
	for n := range g.edges {
		roots = append(roots, n)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	for _, n := range roots {
		if color[n] == 0 {
			dfs(n)
		}
	}
	return out
}

func cycleKey(nodes []*types.Var, fset *token.FileSet) string {
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = fset.Position(n.Pos()).String()
	}
	sort.Strings(names)
	key := ""
	for _, s := range names {
		key += s + ";"
	}
	return key
}

// lockName renders a lock identity for diagnostics: package-qualified for
// package-level mutexes, Type.field for struct fields.
func lockName(v *types.Var) string {
	if v.IsField() {
		return fieldOwnerName(v) + v.Name()
	}
	return v.Name()
}

// fieldOwnerName best-effort resolves the struct type name owning a field.
func fieldOwnerName(v *types.Var) string {
	pkg := v.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name() + "."
			}
		}
	}
	return ""
}
