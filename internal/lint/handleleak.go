package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HandleLeak flags acquisitions of refcounted handles that are not released
// on every path — the lostcancel analysis, retargeted at the registry's
// Handle lifecycle.
//
// A handle type is marked "aliaslint:handle". Any call whose first result
// is a pointer to a handle type pins the handle; the caller must call its
// Release method (directly or via defer) on every path that follows, or the
// module the handle pins can never be evicted. Since PR 8 the check is an
// instance of the obligation dataflow (obligation.go) solved over the
// function's CFG (cfg.go):
//
//   - `h.Release()` and `defer h.Release()` discharge the obligation
//     (a defer discharges every later path at once);
//   - a path that tests the call's ok-result and returns on failure is
//     exempt inside the failure branch (the handle was never pinned) —
//     ok-narrowing is an edge transfer on the branch condition;
//   - returning the handle, storing it into a field/slice/map, or capturing
//     it in a closure transfers ownership — the obligation escapes with it;
//     a plain call argument only borrows the pin;
//   - an uncovered obligation reaching the CFG exit (any return, or falling
//     off the end) is reported at the acquisition site. Paths ending in
//     panic never reach the exit.
//
// Loop bodies may run zero times (the loop head joins the entering state),
// so a release inside a loop does not discharge the path after it.
var HandleLeak = &Analyzer{
	Name: "handleleak",
	Doc: "flags aliaslint:handle acquisitions whose Release is not called on " +
		"every path (lostcancel-style obligation dataflow)",
	Run: runHandleLeak,
}

func runHandleLeak(pass *Pass) error {
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Function literals get their own CFG: an acquisition inside a
			// closure is checked against the closure's paths.
			for _, body := range funcBodies(fd.Body) {
				checkHandleBody(pass, body)
			}
		}
	}
	return nil
}

// funcBodies returns body plus the body of every function literal nested
// inside it, outermost first.
func funcBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// inspectShallow walks the statements of one function body without
// descending into nested function literals (those are separate bodies).
func inspectShallow(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

// acquisition is one tracked handle obligation within a function.
type acquisition struct {
	v    *types.Var // the handle variable
	ok   *types.Var // the bool companion of a (h, ok) acquire; nil otherwise
	acq  ast.Node   // the assignment statement that activates the pin
	pos  token.Pos  // acquisition site, where leaks are reported
	name string     // callee name for the message
}

// isHandleAcquire reports whether call's first result is a pinned pointer
// to an aliaslint:handle type, and the callee's name. Constructor-named
// callees (New…/Build…/make…) mint fresh handles with no pin — dropping one
// is plain garbage collection, not a leak — and "aliaslint:nopin" annotates
// lookups that intentionally return without pinning.
func isHandleAcquire(pass *Pass, call *ast.CallExpr) (string, bool) {
	info := pass.TypesInfo()
	tv, ok := info.Types[call]
	if !ok {
		return "", false
	}
	first := tv.Type
	if tup, ok := first.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return "", false
		}
		first = tup.At(0).Type()
	}
	if _, isPtr := first.(*types.Pointer); !isPtr {
		return "", false
	}
	n := namedOf(first)
	if n == nil || !pass.Annotated(n.Obj(), "handle") {
		return "", false
	}
	name := "call"
	if fn := calleeObj(info, call); fn != nil {
		if isConstructorName(fn.Name()) || pass.Annotated(fn, "nopin") {
			return "", false
		}
		name = fn.Name()
	}
	return name, true
}

// findAcquisitions collects the handle acquisitions of one function body:
// `h := Acquire(...)` / `h, ok := Acquire(...)` as a plain statement or an
// if/switch init. Nested function literals are excluded (separate bodies).
func findAcquisitions(pass *Pass, body *ast.BlockStmt) []*acquisition {
	info := pass.TypesInfo()
	var acqs []*acquisition
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isHandleAcquire(pass, call)
		if !ok {
			return true
		}
		hv, _ := lhsVar(info, as, 0)
		if hv == nil {
			return true
		}
		a := &acquisition{v: hv, acq: as, pos: call.Pos(), name: name}
		if len(as.Lhs) == 2 {
			if okv, _ := lhsVar(info, as, 1); okv != nil && isBool(okv.Type()) {
				a.ok = okv
			}
		}
		acqs = append(acqs, a)
		return true
	})
	return acqs
}

func checkHandleBody(pass *Pass, body *ast.BlockStmt) {
	acqs := findAcquisitions(pass, body)
	if len(acqs) == 0 {
		return
	}
	g := BuildCFG(body)
	info := pass.TypesInfo()
	for _, a := range acqs {
		spec := &obligationSpec{
			info: info,
			v:    a.v,
			ok:   a.ok,
			acq:  a.acq,
			isRelease: func(call *ast.CallExpr) bool {
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Release" {
					return false
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				return ok && info.Uses[id] == a.v
			},
		}
		if solveObligation(g, spec) {
			pass.Reportf(a.pos,
				"handle acquired from %s is not released on every path; "+
					"call Release (or defer it) before each return, or the module stays pinned",
				a.name)
		}
	}
}

func lhsVar(info *types.Info, as *ast.AssignStmt, i int) (*types.Var, bool) {
	if i >= len(as.Lhs) {
		return nil, false
	}
	id, ok := as.Lhs[i].(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
