package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HandleLeak flags acquisitions of refcounted handles that are not released
// on every path — the lostcancel analysis, retargeted at the registry's
// Handle lifecycle.
//
// A handle type is marked "aliaslint:handle". Any call whose first result
// is a pointer to a handle type pins the handle; the caller must call its
// Release method (directly or via defer) on every path that follows, or the
// module the handle pins can never be evicted. The analysis is a forward
// walk of the enclosing function body:
//
//   - `h.Release()` and `defer h.Release()` discharge the obligation
//     (a defer discharges every later path at once);
//   - a path that tests the call's ok-result and returns on failure is
//     exempt inside the failure branch (the handle was never pinned);
//   - returning the handle, storing it into a field/slice/map, or passing
//     it to another function transfers ownership — the obligation escapes
//     with it;
//   - any return (or falling off the end of the function) with the
//     obligation still live is reported at the acquisition site.
//
// Branches (if/switch) are analyzed per arm; loop bodies may run zero
// times, so a release inside a loop does not discharge the path after it.
var HandleLeak = &Analyzer{
	Name: "handleleak",
	Doc: "flags aliaslint:handle acquisitions whose Release is not called on " +
		"every path (lostcancel-style CFG walk)",
	Run: runHandleLeak,
}

func runHandleLeak(pass *Pass) error {
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHandleFunc(pass, fd)
		}
	}
	return nil
}

// acquisition is one tracked handle obligation within a function.
type acquisition struct {
	v    *types.Var // the handle variable
	ok   *types.Var // the bool companion of a (h, ok) acquire; nil otherwise
	pos  token.Pos  // acquisition site, where leaks are reported
	name string     // callee name for the message
}

// leakState is the walk state for one acquisition.
type leakState struct {
	active   bool // acquisition statement has executed
	released bool
	deferred bool // defer h.Release() seen: every later exit is covered
	escaped  bool // ownership transferred; obligation no longer ours
	okFalse  bool // on this path the acquire's ok-result is known false
}

func checkHandleFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo()

	// isHandleAcquire reports whether call's first result is a pinned
	// pointer to an aliaslint:handle type. Constructor-named callees
	// (New…/Build…/make…) mint fresh handles with no pin — dropping one is
	// a plain garbage collection, not a leak — and "aliaslint:nopin"
	// annotates lookups that intentionally return without pinning.
	isHandleAcquire := func(call *ast.CallExpr) (string, bool) {
		tv, ok := info.Types[call]
		if !ok {
			return "", false
		}
		first := tv.Type
		if tup, ok := first.(*types.Tuple); ok {
			if tup.Len() == 0 {
				return "", false
			}
			first = tup.At(0).Type()
		}
		if _, isPtr := first.(*types.Pointer); !isPtr {
			return "", false
		}
		n := namedOf(first)
		if n == nil || !pass.Annotated(n.Obj(), "handle") {
			return "", false
		}
		name := "call"
		if fn := calleeObj(info, call); fn != nil {
			if isConstructorName(fn.Name()) || pass.Annotated(fn, "nopin") {
				return "", false
			}
			name = fn.Name()
		}
		return name, true
	}

	// Find the acquisitions: `h := Acquire(...)` / `h, ok := Acquire(...)`
	// directly in a statement list or an if-init.
	var acqs []*acquisition
	acqOf := map[ast.Stmt]*acquisition{}
	recordAssign := func(stmt ast.Stmt, as *ast.AssignStmt) {
		if len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := isHandleAcquire(call)
		if !ok {
			return
		}
		hv, _ := lhsVar(info, as, 0)
		if hv == nil {
			return
		}
		a := &acquisition{v: hv, pos: call.Pos(), name: name}
		if len(as.Lhs) == 2 {
			if okv, _ := lhsVar(info, as, 1); okv != nil && isBool(okv.Type()) {
				a.ok = okv
			}
		}
		acqs = append(acqs, a)
		acqOf[stmt] = a
	}
	// If-init acquisitions are keyed at the IfStmt (so the walker can apply
	// ok-narrowing); the inner AssignStmt must not record a duplicate.
	consumed := map[*ast.AssignStmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !consumed[n] {
				recordAssign(n, n)
			}
		case *ast.IfStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok {
				consumed[as] = true
				recordAssign(n, as)
			}
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	for _, a := range acqs {
		w := &leakWalker{pass: pass, info: info, a: a, acqOf: acqOf}
		st := leakState{}
		end := w.walkStmts(fd.Body.List, st)
		w.checkExit(end, fd.Body.End())
		if w.leaked {
			pass.Reportf(a.pos,
				"handle acquired from %s is not released on every path; "+
					"call Release (or defer it) before each return, or the module stays pinned",
				a.name)
		}
	}
}

// leakWalker walks one function body for one acquisition.
type leakWalker struct {
	pass   *Pass
	info   *types.Info
	a      *acquisition
	acqOf  map[ast.Stmt]*acquisition
	leaked bool
}

// terminated marks a state whose path ended (return/branch out).
type outcome struct {
	st         leakState
	terminated bool
}

func (w *leakWalker) checkExit(st leakState, _ token.Pos) {
	if st.active && !st.released && !st.deferred && !st.escaped && !st.okFalse {
		w.leaked = true
	}
}

// usesVar reports whether the expression mentions the tracked variable.
func (w *leakWalker) usesVar(e ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.info.Uses[id] == w.a.v {
			found = true
		}
		return !found
	})
	return found
}

// isReleaseCall reports whether e is `h.Release()` for the tracked handle.
func (w *leakWalker) isReleaseCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.info.Uses[id] == w.a.v
}

// escapes reports whether the statement/expression transfers ownership of
// the handle: stored into a composite literal, sent on a channel, or
// captured by a function literal. Passing the handle as a plain call
// argument is ordinary use, NOT a transfer — the callee borrows the pin;
// treating it as a transfer would blind the analyzer to the canonical
// early-return leak (`if err := work(h); err != nil { return err }`).
// Aliasing assignments, returns, defers and go statements are handled by
// the statement walk.
func (w *leakWalker) escapes(n ast.Node) bool {
	esc := false
	ast.Inspect(n, func(m ast.Node) bool {
		if esc {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			if w.usesVar(m) {
				esc = true
			}
			return false
		case *ast.CompositeLit, *ast.SendStmt:
			if w.usesVar(m) {
				esc = true
			}
			return false
		}
		return true
	})
	return esc
}

// okCond classifies a branch condition against the acquisition's ok-result:
// +1 cond is `ok`, -1 cond is `!ok`, 0 unrelated.
func (w *leakWalker) okCond(cond ast.Expr) int {
	if w.a.ok == nil || cond == nil {
		return 0
	}
	switch c := ast.Unparen(cond).(type) {
	case *ast.Ident:
		if w.info.Uses[c] == w.a.ok {
			return 1
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			if id, ok := ast.Unparen(c.X).(*ast.Ident); ok && w.info.Uses[id] == w.a.ok {
				return -1
			}
		}
	}
	return 0
}

// walkStmts walks a statement list, returning the fall-through state.
// Paths that terminate inside (returns) are checked as encountered.
func (w *leakWalker) walkStmts(list []ast.Stmt, st leakState) leakState {
	for _, s := range list {
		out := w.walkStmt(s, st)
		if out.terminated {
			// The remainder of the list is unreachable on this path.
			out.st.active = false
			return out.st
		}
		st = out.st
	}
	return st
}

func (w *leakWalker) walkStmt(s ast.Stmt, st leakState) outcome {
	// The acquisition statement itself activates tracking.
	if a, ok := w.acqOf[s]; ok && a == w.a {
		if ifs, isIf := s.(*ast.IfStmt); isIf {
			st.active = true
			return w.walkIf(ifs, st, true)
		}
		st.active = true
		return outcome{st: st}
	}
	if !st.active {
		// Before the acquisition nothing can affect the obligation, but
		// nested statements may contain it (e.g. acquisition inside an if
		// body): recurse structurally.
		switch s := s.(type) {
		case *ast.BlockStmt:
			return outcome{st: w.walkStmts(s.List, st)}
		case *ast.IfStmt:
			return w.walkIf(s, st, false)
		case *ast.ForStmt:
			if s.Body != nil {
				w.walkStmts(s.Body.List, st)
			}
			return outcome{st: st}
		case *ast.RangeStmt:
			if s.Body != nil {
				w.walkStmts(s.Body.List, st)
			}
			return outcome{st: st}
		case *ast.SwitchStmt:
			return w.walkSwitch(s.Body, st)
		case *ast.TypeSwitchStmt:
			return w.walkSwitch(s.Body, st)
		case *ast.ReturnStmt:
			return outcome{st: st, terminated: true}
		case *ast.BranchStmt:
			return outcome{st: st, terminated: true}
		case *ast.LabeledStmt:
			return w.walkStmt(s.Stmt, st)
		}
		return outcome{st: st}
	}

	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.isReleaseCall(s.X) {
			st.released = true
		} else if w.escapes(s.X) {
			st.escaped = true
		}
		return outcome{st: st}
	case *ast.DeferStmt:
		if w.isReleaseCall(s.Call) {
			st.deferred = true
		} else if w.escapes(s.Call) || w.usesVar(s.Call) {
			st.escaped = true
		}
		return outcome{st: st}
	case *ast.GoStmt:
		if w.usesVar(s.Call) {
			st.escaped = true
		}
		return outcome{st: st}
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && w.info.Uses[id] == w.a.v {
				// Reassigned: the old pin is unreachable. Treat as escape
				// (the reassignment site is a separate acquisition if it is
				// one).
				st.escaped = true
			}
		}
		if w.escapes(s) {
			st.escaped = true
		}
		for _, rhs := range s.Rhs {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && w.info.Uses[id] == w.a.v {
				st.escaped = true // aliased into another variable
			}
		}
		return outcome{st: st}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if w.usesVar(r) {
				st.escaped = true // ownership returned to the caller
			}
		}
		w.checkExit(st, s.Pos())
		return outcome{st: st, terminated: true}
	case *ast.BranchStmt:
		// break/continue/goto: leave the enclosing construct to merge; do
		// not treat as a function exit.
		return outcome{st: st, terminated: true}
	case *ast.BlockStmt:
		return outcome{st: w.walkStmts(s.List, st)}
	case *ast.IfStmt:
		return w.walkIf(s, st, false)
	case *ast.ForStmt:
		if s.Body != nil {
			body := st
			out := w.walkStmts(s.Body.List, body)
			// Zero-iteration semantics: only sticky facts survive the loop.
			st.deferred = st.deferred || out.deferred
			st.escaped = st.escaped || out.escaped
		}
		return outcome{st: st}
	case *ast.RangeStmt:
		if w.escapes(s.X) {
			st.escaped = true
		}
		if s.Body != nil {
			out := w.walkStmts(s.Body.List, st)
			st.deferred = st.deferred || out.deferred
			st.escaped = st.escaped || out.escaped
		}
		return outcome{st: st}
	case *ast.SwitchStmt:
		return w.walkSwitch(s.Body, st)
	case *ast.TypeSwitchStmt:
		return w.walkSwitch(s.Body, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.SelectStmt:
		// Rare on these paths; be conservative toward no false positives:
		// if any clause releases, consider the obligation handled.
		if w.usesVar(s) {
			st.escaped = true
		}
		return outcome{st: st}
	}
	return outcome{st: st}
}

// walkIf analyzes an if/else with ok-result narrowing. fromInit marks the
// acquisition-carrying `if h, ok := acquire(); cond {…}` form.
func (w *leakWalker) walkIf(s *ast.IfStmt, st leakState, fromInit bool) outcome {
	if !fromInit && s.Init != nil {
		out := w.walkStmt(s.Init, st)
		st = out.st
	}
	dir := w.okCond(s.Cond)

	thenSt := st
	elseSt := st
	if dir == 1 {
		elseSt.okFalse = true // cond `ok` false on the else path
	}
	if dir == -1 {
		thenSt.okFalse = true // cond `!ok` true → ok false inside then
	}

	var thenOut outcome
	if s.Body != nil {
		thenOut = outcome{st: w.walkStmts(s.Body.List, thenSt)}
		thenOut.terminated = w.blockTerminates(s.Body)
		if thenOut.terminated {
			w.noteTerminatedBranch(s.Body, thenOut.st)
		}
	}
	var elseOut outcome
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseOut = outcome{st: w.walkStmts(e.List, elseSt)}
		elseOut.terminated = w.blockTerminates(e)
		if elseOut.terminated {
			w.noteTerminatedBranch(e, elseOut.st)
		}
	case *ast.IfStmt:
		elseOut = w.walkIf(e, elseSt, false)
	default:
		elseOut = outcome{st: elseSt}
	}

	switch {
	case thenOut.terminated && elseOut.terminated:
		return outcome{st: st, terminated: true}
	case thenOut.terminated:
		return outcome{st: elseOut.st}
	case elseOut.terminated:
		return outcome{st: thenOut.st}
	default:
		return outcome{st: mergeStates(thenOut.st, elseOut.st)}
	}
}

// covered reports whether the obligation is discharged on this path: not
// yet acquired, released, deferred-released, ownership transferred, or the
// acquire's ok-result known false (never pinned).
func covered(s leakState) bool {
	return !s.active || s.released || s.deferred || s.escaped || s.okFalse
}

// mergeStates joins two continuing branches. A merged path is discharged
// only when both incoming paths are; when exactly one is covered, the
// merged state carries the uncovered path's obligations forward.
func mergeStates(a, b leakState) leakState {
	ca, cb := covered(a), covered(b)
	switch {
	case ca && cb:
		return leakState{active: a.active || b.active, released: true}
	case ca:
		b.active = a.active || b.active
		return b
	case cb:
		a.active = a.active || b.active
		return a
	default:
		return leakState{
			active:   a.active || b.active,
			released: a.released && b.released,
			deferred: a.deferred && b.deferred,
			escaped:  a.escaped && b.escaped,
			okFalse:  a.okFalse && b.okFalse,
		}
	}
}

// walkSwitch analyzes switch clauses as parallel branches. Without a
// default clause some input falls through unchanged, so the merged state
// keeps the pre-switch obligations.
func (w *leakWalker) walkSwitch(body *ast.BlockStmt, st leakState) outcome {
	if body == nil {
		return outcome{st: st}
	}
	hasDefault := false
	merged := leakState{}
	first := true
	allTerminated := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		out := w.walkStmts(cc.Body, st)
		terminated := len(cc.Body) > 0 && w.stmtsTerminate(cc.Body)
		if terminated {
			continue
		}
		allTerminated = false
		if first {
			merged, first = out, false
		} else {
			merged = mergeStates(merged, out)
		}
	}
	if allTerminated && hasDefault {
		return outcome{st: st, terminated: true}
	}
	if first { // no continuing clause contributed
		return outcome{st: st}
	}
	if !hasDefault {
		merged = mergeStates(merged, st)
	}
	return outcome{st: merged}
}

// noteTerminatedBranch re-checks exits of a terminated branch — the walk
// inside already checked explicit returns; nothing further to do, the hook
// exists for symmetry and future panics-terminate handling.
func (w *leakWalker) noteTerminatedBranch(*ast.BlockStmt, leakState) {}

// blockTerminates reports whether a block always leaves the enclosing
// function/construct (syntactic check: last statement is a return, a
// branch, or a panic call).
func (w *leakWalker) blockTerminates(b *ast.BlockStmt) bool {
	return w.stmtsTerminate(b.List)
}

func (w *leakWalker) stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return w.stmtsTerminate(last.List)
	}
	return false
}

func lhsVar(info *types.Info, as *ast.AssignStmt, i int) (*types.Var, bool) {
	if i >= len(as.Lhs) {
		return nil, false
	}
	id, ok := as.Lhs[i].(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
