package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at testdata/src/<path> (relative to
// dir), runs the analyzers over it, and matches the diagnostics against
// `// want "regexp"` comments in the fixture sources — the x/tools
// analysistest convention, reimplemented on the stdlib loader.
//
// A want comment expects one diagnostic on its own line whose message
// matches the quoted regular expression; several quoted patterns on one
// comment expect several diagnostics on that line. Diagnostics without a
// matching expectation, and expectations without a matching diagnostic,
// both fail the test.
func RunFixture(t *testing.T, dir, path string, analyzers ...*Analyzer) {
	t.Helper()
	loader := NewLoader(dir, "")
	prog, err := loader.Load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}

	type expectation struct {
		file string
		line int
		re   *regexp.Regexp
		raw  string
		hit  bool
	}
	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pats, ok := parseWant(c.Text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, p := range pats {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re, raw: p,
						})
					}
				}
			}
			// A want comment may sit on its own line immediately after a
			// multi-line statement; the analysistest convention keeps them on
			// the flagged line, which is what the matcher below assumes.
			_ = file
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic (%s): %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWant extracts the quoted patterns of a `// want "p1" "p2"` comment.
func parseWant(text string) ([]string, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, false
	}
	body = strings.TrimSpace(body)
	body, ok = strings.CutPrefix(body, "want ")
	if !ok {
		return nil, false
	}
	var pats []string
	rest := strings.TrimSpace(body)
	for rest != "" {
		switch rest[0] {
		case '"':
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, false
			}
			u, err := strconv.Unquote(q)
			if err != nil {
				return nil, false
			}
			pats = append(pats, u)
			rest = strings.TrimSpace(rest[len(q):])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			pats = append(pats, rest[1:1+end])
			rest = strings.TrimSpace(rest[2+end:])
		default:
			return nil, false
		}
	}
	return pats, len(pats) > 0
}

// posOf is a small helper for analyzers that report on nodes.
func posOf(fset *token.FileSet, n ast.Node) string {
	return fmt.Sprint(fset.Position(n.Pos()))
}
