// Package pinflow exercises the pinflow analyzer: handle pins escaping to
// goroutines, the aliaslint:pin-transfer escape hatch, and stored closures
// that release on undocumented goroutines.
package pinflow

// Handle is a pinned module handle, as in internal/service.
//
// aliaslint:handle
type Handle struct{ refs int }

// Release drops the pin.
func (h *Handle) Release() { h.refs-- }

// Registry hands out pinned handles.
type Registry struct{ h *Handle }

// Acquire pins and returns the handle.
func (r *Registry) Acquire() (*Handle, bool) {
	r.h.refs++
	return r.h, true
}

// Submit hands f to a worker goroutine that owns any captured pins.
//
// aliaslint:pin-transfer
func Submit(f func()) { go f() }

// consume takes ownership of the pin and releases it.
//
// aliaslint:pin-transfer
func consume(h *Handle) { defer h.Release() }

func use(h *Handle) { _ = h.refs }

// A goroutine that borrows the pin without releasing it races the caller's
// Release.
func leakGoroutine(r *Registry) {
	h, ok := r.Acquire()
	if !ok {
		return
	}
	defer h.Release()
	go func() { // want `escapes to a goroutine that does not release it`
		use(h)
	}()
}

// Passing the pin to an unannotated function in a go statement hides the
// ownership transfer from the analyzer (and from readers).
func leakGoNamed(r *Registry) {
	h, ok := r.Acquire()
	if !ok {
		return
	}
	go use(h) // want `not annotated aliaslint:pin-transfer`
}

// A stored closure releases on whatever goroutine eventually runs it.
func storedRelease(r *Registry) func() {
	h, ok := r.Acquire()
	if !ok {
		return nil
	}
	cb := func() {
		h.Release() // want `stored closure`
	}
	return cb
}

// Releasing on every path inside the goroutine is the documented pattern.
func okGoroutineRelease(r *Registry) {
	h, ok := r.Acquire()
	if !ok {
		return
	}
	go func() {
		defer h.Release()
		use(h)
	}()
}

// pin-transfer callees own captured pins: Submit's worker releases.
func okSubmitTransfer(r *Registry) {
	h, ok := r.Acquire()
	if !ok {
		return
	}
	Submit(func() {
		defer h.Release()
		use(h)
	})
}

// go pin-transfer(h) is the annotated hand-off form.
func okGoConsume(r *Registry) {
	h, ok := r.Acquire()
	if !ok {
		return
	}
	go consume(h)
}

// Deferred literals run on the acquiring goroutine.
func okDeferLit(r *Registry) {
	h, ok := r.Acquire()
	if !ok {
		return
	}
	defer func() { h.Release() }()
	use(h)
}

// A goroutine may hand the pin onward through another pin-transfer call.
func okGoroutineHandoff(r *Registry) {
	h, ok := r.Acquire()
	if !ok {
		return
	}
	go func() {
		Submit(func() {
			defer h.Release()
			use(h)
		})
	}()
}
