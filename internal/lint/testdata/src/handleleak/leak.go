// Package handleleak exercises the handleleak analyzer: refcounted handle
// acquisitions whose Release is not called on every path.
package handleleak

import "errors"

// Handle is a refcounted module handle.
//
// aliaslint:handle
type Handle struct{ refs int }

// Release drops one pin.
func (h *Handle) Release() { h.refs-- }

// State is a read on the receiver — not an ownership transfer.
func (h *Handle) State() int { return h.refs }

// Registry hands out pinned handles.
type Registry struct{ h *Handle }

// Acquire pins and returns the handle.
func (r *Registry) Acquire(name string) (*Handle, bool) {
	if r.h == nil {
		return nil, false
	}
	r.h.refs++
	return r.h, true
}

// AcquireOne pins and returns the handle without an ok result.
func (r *Registry) AcquireOne() *Handle {
	r.h.refs++
	return r.h
}

// NewHandle mints an unpinned handle — constructor-named calls carry no
// release obligation.
func NewHandle() *Handle { return &Handle{} }

// lookup returns the handle without pinning it.
//
// aliaslint:nopin
func (r *Registry) lookup() (*Handle, bool) { return r.h, r.h != nil }

func work(h *Handle) error { _ = h.State(); return nil }

// ---------------------------------------------------------------------------
// Positive cases.

// leakEarlyReturn forgets the release on the error path.
func leakEarlyReturn(r *Registry) error {
	h, ok := r.Acquire("m") // want `handle acquired from Acquire is not released on every path`
	if !ok {
		return errors.New("no module")
	}
	if err := work(h); err != nil {
		return err // error path returns with the pin still held
	}
	h.Release()
	return nil
}

// leakFallOff never releases at all.
func leakFallOff(r *Registry) {
	h := r.AcquireOne() // want `handle acquired from AcquireOne is not released on every path`
	_ = h.State()
}

// leakOneBranch releases on one branch only.
func leakOneBranch(r *Registry, cond bool) {
	h := r.AcquireOne() // want `handle acquired from AcquireOne is not released on every path`
	if cond {
		h.Release()
	}
}

// leakLoopOnly releases inside a loop that may run zero times.
func leakLoopOnly(r *Registry, n int) {
	h := r.AcquireOne() // want `handle acquired from AcquireOne is not released on every path`
	for i := 0; i < n; i++ {
		h.Release()
	}
}

// ---------------------------------------------------------------------------
// Negative cases.

// okDefer releases via defer, covering every path at once.
func okDefer(r *Registry) error {
	h, ok := r.Acquire("m")
	if !ok {
		return errors.New("no module")
	}
	defer h.Release()
	return work(h)
}

// okEveryPath releases explicitly before each return.
func okEveryPath(r *Registry) error {
	h, ok := r.Acquire("m")
	if !ok {
		return errors.New("no module")
	}
	if err := work(h); err != nil {
		h.Release()
		return err
	}
	h.Release()
	return nil
}

// okGuardInIf uses the if-init acquire idiom.
func okGuardInIf(r *Registry) {
	if h, ok := r.Acquire("m"); ok {
		defer h.Release()
		_ = h.State()
	}
}

// okEscapeReturn transfers ownership to the caller.
func okEscapeReturn(r *Registry) (*Handle, bool) {
	h, ok := r.Acquire("m")
	if !ok {
		return nil, false
	}
	return h, true
}

// keeper owns handles stored into it.
type keeper struct{ h *Handle }

// okEscapeStore aliases the handle into a longer-lived structure —
// ownership transfers with the alias.
func okEscapeStore(r *Registry, k *keeper) {
	h := r.AcquireOne()
	k.h = h
}

// okEscapeDefer hands the handle to a deferred adopter.
func okEscapeDefer(r *Registry) {
	h := r.AcquireOne()
	defer adopt(h)
	_ = h.State()
}

// okEscapeGo hands the handle to a goroutine.
func okEscapeGo(r *Registry) {
	h := r.AcquireOne()
	go adopt(h)
}

func adopt(h *Handle) { defer h.Release() }

// leakBorrowedCall passes the handle to a callee and forgets the release:
// a plain call argument borrows the pin, it does not transfer it.
func leakBorrowedCall(r *Registry) error {
	h := r.AcquireOne() // want `handle acquired from AcquireOne is not released on every path`
	if err := work(h); err != nil {
		return err
	}
	h.Release()
	return nil
}

// okConstructor: constructor-named calls mint unpinned handles (regression:
// service.NewPending + failed build drops the handle to the GC, no leak).
func okConstructor() error {
	h := NewHandle()
	if err := work(h); err != nil {
		return err
	}
	return nil
}

// okNopin: annotated lookups return unpinned handles (regression:
// Registry.lookupLocked in internal/service).
func okNopin(r *Registry) bool {
	h, ok := r.lookup()
	if !ok {
		return false
	}
	_ = h.State()
	return true
}

// okSuppressed documents a deliberate exception.
func okSuppressed(r *Registry) {
	h := r.AcquireOne() //nolint:handleleak // fixture: released by a path the analyzer cannot see
	_ = h
}
