// Package internermix_scoped exercises the internermix analyzer's check A:
// Default-interner leaf constructors in an interner-scoped package.
//
// aliaslint:interner-scoped
package internermix_scoped

import "symbolic"

// bad constructs leaves through the process-wide Default interner.
func bad() *symbolic.Expr {
	a := symbolic.Const(3) // want `call to symbolic.Const constructs a symbolic expression in the process-wide Default interner`
	b := symbolic.Sym("n") // want `call to symbolic.Sym constructs a symbolic expression`
	_ = symbolic.Zero()    // want `call to symbolic.Zero constructs a symbolic expression`
	return symbolic.Add(a, b)
}

// good derives every leaf from an explicit interner.
func good(in *symbolic.Interner) *symbolic.Expr {
	a := in.Const(3)
	b := in.Sym("n")
	_ = in.Zero()
	return symbolic.Add(a, b)
}

// suppressed documents a deliberate exception.
func suppressed() *symbolic.Expr {
	return symbolic.Const(7) //nolint:internermix // fixture: entry point with no interner in scope
}
