// Package frozenwrite exercises the frozenwrite analyzer: writes to fields
// of aliaslint:frozen types outside constructor/build/mutator functions.
package frozenwrite

// Index is a compiled, read-only-after-build structure.
//
// aliaslint:frozen
type Index struct {
	n    int
	cols []int
}

// Plain is not frozen; writes to it are always fine.
type Plain struct{ n int }

// NewIndex may initialize the frozen fields: constructor prefix.
func NewIndex(n int) *Index {
	ix := &Index{}
	ix.n = n
	ix.cols = make([]int, n)
	for i := range ix.cols {
		ix.cols[i] = i
	}
	return ix
}

// buildIndex is a builder too.
func buildIndex() *Index {
	ix := &Index{}
	ix.n = 1
	return ix
}

// reset is an approved writer.
//
// aliaslint:mutator
func reset(ix *Index) {
	ix.n = 0
}

// corrupt writes frozen state from an ordinary function.
func corrupt(ix *Index) {
	ix.n = 7        // want `assignment to field of frozen type Index`
	ix.cols[0] = 9  // want `assignment to field of frozen type Index`
	ix.n++          // want `increment/decrement of field of frozen type Index`
	ix.n += 2       // want `assignment to field of frozen type Index`
	p := Plain{}
	p.n = 3 // not frozen: fine
	_ = p
}

// suppressed documents a deliberate exception.
func suppressed(ix *Index) {
	ix.n = 1 //nolint:frozenwrite // fixture: deliberate exception
}

// reads never trigger the analyzer.
func reads(ix *Index) int {
	return ix.n + ix.cols[0]
}
