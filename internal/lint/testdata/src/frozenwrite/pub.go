package frozenwrite

// Pub is a frozen type with exported fields, writable cross-package only in
// the negative sense — foreign packages may never write it.
//
// aliaslint:frozen
type Pub struct{ N int }

// NewPub builds a Pub.
func NewPub(n int) *Pub { return &Pub{N: n} }
