// Package ctxcancel exercises the ctxcancel analyzer: cancel functions
// leaked on early returns, discarded cancel functions, context struct
// fields, and the clean defer/hand-off patterns.
package ctxcancel

import (
	"context"
	"errors"
	"time"
)

var errNope = errors.New("nope")

func work(ctx context.Context) { _ = ctx }

// The early return path leaks the derived context.
func leakEarlyReturn(parent context.Context, fail bool) error {
	ctx, cancel := context.WithCancel(parent) // want `not called on every path`
	if fail {
		return errNope
	}
	work(ctx)
	cancel()
	return nil
}

// Discarding the cancel function makes the timeout unstoppable.
func discard(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second) // want `discarded`
	return ctx
}

// Contexts are request-scoped: storing one in long-lived state hides its
// lifetime.
type holder struct {
	ctx context.Context // want `stored in a struct field`
}

// defer cancel() right after the derivation is the canonical discharge.
func okDefer(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	work(ctx)
}

// Handing the cancel function to another function transfers the obligation.
func okPassed(parent context.Context) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	go waiter(cancel)
	work(ctx)
}

func waiter(cancel context.CancelFunc) { defer cancel() }

// Calling cancel on every explicit path is also fine.
func okAllPaths(parent context.Context, fail bool) {
	ctx, cancel := context.WithCancel(parent)
	if fail {
		cancel()
		return
	}
	work(ctx)
	cancel()
}

// WithCancelCause follows the same contract.
func okCause(parent context.Context) {
	ctx, cancel := context.WithCancelCause(parent)
	defer cancel(errNope)
	work(ctx)
}
