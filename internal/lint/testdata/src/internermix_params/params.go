// Package internermix_params exercises the internermix analyzer's check B:
// combining expressions derived from two different interner parameters.
// The package is deliberately NOT interner-scoped — check B applies
// everywhere.
package internermix_params

import "symbolic"

// mix feeds expressions from two distinct interner parameters into one
// combining operation.
func mix(a, b *symbolic.Interner) *symbolic.Expr {
	x := a.Const(1)
	y := b.Const(2)
	return symbolic.Add(x, y) // want `call to symbolic.Add combines expressions derived from different interner parameters`
}

// mixCompare mixes through a pointer comparison, which can never hold
// across interners.
func mixCompare(a, b *symbolic.Interner) bool {
	x := a.Sym("n")
	y := b.Sym("n")
	return x == y // want `pointer comparison of \*symbolic.Expr combines expressions derived from different interner parameters`
}

// mixIndirect propagates taint through intermediate variables.
func mixIndirect(a, b *symbolic.Interner) *symbolic.Expr {
	x := a.Const(1)
	x2 := symbolic.Add(x, x)
	y := b.Const(2)
	y2 := symbolic.Sub(y, y)
	return symbolic.Add(x2, y2) // want `call to symbolic.Add combines expressions derived from different interner parameters`
}

// sameSource is fine: both operands derive from the same parameter.
func sameSource(a, b *symbolic.Interner) *symbolic.Expr {
	x := a.Const(1)
	y := a.Const(2)
	_ = b
	return symbolic.Add(x, y)
}

// oneParam is never checked: a single interner parameter cannot mix.
func oneParam(in *symbolic.Interner) *symbolic.Expr {
	return symbolic.Add(in.Const(1), in.Const(2))
}
