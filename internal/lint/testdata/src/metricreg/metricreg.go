// Package metricreg exercises the metricreg analyzer: once-only literal
// registration, bounded label cardinality, and the scrape-vs-hotpath lock
// contract with its aliaslint:striped escape hatch.
package metricreg

import (
	"strconv"
	"sync"

	"telemetry"
)

const constLabel = "const"

// striped is a bounded stripe whose lock is held O(1) on both the query and
// the scrape side, so it opts out of the contention check.
type striped struct {
	mu sync.Mutex // aliaslint:striped (bounded stripe, held O(1) by design)
	v  int
}

type server struct {
	mu     sync.Mutex
	n      int
	stripe striped
	reg    *telemetry.Registry
	vec    *telemetry.CounterVec
}

// query is the request hot path.
//
// aliaslint:hotpath
func (s *server) query() int {
	s.mu.Lock()
	s.n++
	n := s.n
	s.mu.Unlock()
	s.stripe.mu.Lock()
	s.stripe.v++
	s.stripe.mu.Unlock()
	return n
}

func (s *server) register() {
	s.reg.Counter("fix_requests_total", "requests")
	s.reg.Counter("fix_requests_total", "requests") // want `registered more than once`
	name := dynamicName()
	s.reg.Gauge(name, "dynamic") // want `string literal or constant`
	for i := 0; i < 3; i++ {
		s.reg.Counter("fix_loop_total", "loop") // want `registered inside a loop`
	}
	s.reg.GaugeFunc("fix_depth", "depth", func() float64 { // want `scrape callback acquires`
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.n)
	})
	s.reg.GaugeFunc("fix_stripe", "stripe", func() float64 {
		s.stripe.mu.Lock()
		defer s.stripe.mu.Unlock()
		return float64(s.stripe.v)
	})
	s.reg.GaugeFunc("fix_size", "size", s.lockFree)
}

func dynamicName() string { return "dynamic_name" }

func (s *server) lockFree() float64 { return 0 }

func (s *server) observe(code int) {
	s.vec.With("static").Inc()
	s.vec.With(constLabel).Inc()
	outcome := "ok"
	if code != 0 {
		outcome = "error"
	}
	s.vec.With(outcome).Inc()
	s.vec.With("pre_" + constLabel).Inc()
	s.vec.With(route(code)).Inc()
	s.vec.With(strconv.Itoa(code)).Inc() // want `not provably bounded`
	s.observeMode("sync")
	s.observeMode("batch")
}

// route folds status codes into a fixed label set.
//
// aliaslint:bounded
func route(code int) string {
	if code == 0 {
		return "ok"
	}
	return "error"
}

// observeMode's label is a constant at every call site, which the analyzer
// proves through one call-site hop.
func (s *server) observeMode(mode string) {
	s.vec.With(mode).Inc()
}

// observeRaw's label reaches it from handle's own unconstrained parameter —
// not provable.
func (s *server) observeRaw(path string) {
	s.vec.With(path).Inc() // want `not provably bounded`
}

func (s *server) handle(path string) { s.observeRaw(path) }
