// Package lockorder exercises the lockorder analyzer: inversion cycles in
// the static lock graph, via-callee edges, self-deadlocks, and the
// goroutine/shard patterns that must stay clean.
package lockorder

import "sync"

// A and B form a two-lock inversion.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

func inversionAB() {
	a.mu.Lock()
	b.mu.Lock() // want `lock acquisition order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

func inversionBA() {
	b.mu.Lock()
	a.mu.Lock() // want `lock acquisition order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

// C and D invert through a callee: cThenD holds C.mu across lockD.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

var c C
var d D

func lockD() {
	d.mu.Lock()
	d.mu.Unlock()
}

func cThenD() {
	c.mu.Lock()
	lockD() // want `lock acquisition order cycle`
	c.mu.Unlock()
}

func dThenC() {
	d.mu.Lock()
	c.mu.Lock() // want `lock acquisition order cycle`
	c.mu.Unlock()
	d.mu.Unlock()
}

// Recursive acquisition through the same receiver self-deadlocks.
func double() {
	a.mu.Lock()
	a.mu.Lock() // want `locked again while already held`
	a.mu.Unlock()
	a.mu.Unlock()
}

// shard-style loops are fine: each stripe is released before the next is
// taken, and the shared field identity must not be mistaken for recursion.
type shard struct {
	mu sync.Mutex
	n  int
}

var shards [4]shard

func sum() int {
	n := 0
	for i := range shards {
		shards[i].mu.Lock()
		n += shards[i].n
		shards[i].mu.Unlock()
	}
	return n
}

// E and F are only ever nested across a goroutine boundary: the spawned
// goroutine starts with an empty held set, so no edge and no cycle.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

var e E
var f F

func okGoroutineE() {
	e.mu.Lock()
	go func() {
		f.mu.Lock()
		f.mu.Unlock()
	}()
	e.mu.Unlock()
}

func okGoroutineF() {
	f.mu.Lock()
	go func() {
		e.mu.Lock()
		e.mu.Unlock()
	}()
	f.mu.Unlock()
}

// Consistent ordering with deferred unlocks is clean: G before H everywhere.
type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

var g G
var h H

func okOrderOne() {
	g.mu.Lock()
	defer g.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
}

func okOrderTwo() {
	g.mu.Lock()
	h.mu.Lock()
	h.mu.Unlock()
	g.mu.Unlock()
}
