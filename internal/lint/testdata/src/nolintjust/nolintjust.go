// Package nolintjust exercises the nolint grammar: an unjustified directive
// that suppresses a real finding is itself a finding, a justified one is
// silent, and a directive suppressing nothing is stale. Checked by
// TestNolintJustification via RunAll (want-comments cannot express directive
// findings: a trailing "// want …" comment would read as the justification).
package nolintjust

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// doubleLock's suppression has no justification: the suppression works, but
// the directive itself is flagged.
func doubleLock(c *counter) {
	c.mu.Lock()
	c.mu.Lock() //nolint:lockorder
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// justified carries the required reason and is fully silent.
func justified(c *counter) {
	c.mu.Lock()
	c.mu.Lock() //nolint:lockorder // fixture: intentional recursive lock for the justification test
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// stale suppresses nothing; the audit must report it.
func stale(c *counter) {
	c.n++ //nolint:lockorder // fixture: suppresses nothing, must be reported stale
}
