// Package telemetry is a fixture stand-in for the repo's telemetry package.
// The metricreg analyzer matches methods on named types declared in a
// package *called* "telemetry", so this stub keeps fixtures loadable without
// importing the real module (same trick as the symbolic stub).
package telemetry

// Registry registers metric families.
type Registry struct{}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a counter family.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// GaugeFunc registers a gauge computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

// Counter is a monotonic counter.
type Counter struct{}

// Inc adds one.
func (c *Counter) Inc() {}

// Gauge is a point-in-time value.
type Gauge struct{}

// Set replaces the value.
func (g *Gauge) Set(v float64) {}

// CounterVec is a counter family with labels.
type CounterVec struct{}

// With resolves one child by label values.
func (v *CounterVec) With(labelValues ...string) *Counter { return &Counter{} }
