// Package frozenwrite_ext verifies the cross-package rule: a foreign
// package may never write a frozen type's fields, even from a
// constructor-named function.
package frozenwrite_ext

import "frozenwrite"

// NewWrapped is constructor-named, but Pub belongs to another package.
func NewWrapped() *frozenwrite.Pub {
	p := frozenwrite.NewPub(1)
	p.N = 2 // want `assignment to field of frozen type Pub`
	return p
}

func read(p *frozenwrite.Pub) int { return p.N }
