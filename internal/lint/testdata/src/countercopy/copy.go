// Package countercopy exercises the countercopy analyzer: by-value copies
// of structs holding sync.Mutex or sync/atomic counters.
package countercopy

import (
	"sync"
	"sync/atomic"
)

// shard carries an atomic counter by value — copylocks does not flag it,
// countercopy does.
type shard struct {
	hits atomic.Int64
}

// lockedShard carries a mutex.
type lockedShard struct {
	mu sync.Mutex
	n  int
}

// nested embeds a shard by value: transitively no-copy.
type nested struct {
	s shard
}

// byPtr holds only a pointer to the mutex: copying is fine.
type byPtr struct {
	mu *sync.Mutex
	n  int
}

func sink(s shard)      { _ = s }
func sinkPtr(s *shard)  { _ = s }

// rangeValues iterates shards by value, forking every counter.
func rangeValues(shards []shard) int64 {
	var total int64
	for _, s := range shards { // want `range copies .*shard by value, forking its sync/atomic state`
		total += s.hits.Load()
	}
	return total
}

// rangeNested catches the transitive embed.
func rangeNested(ns []nested) {
	for _, n := range ns { // want `range copies .*nested by value`
		_ = n
	}
}

// rangeLocked catches the mutex case too.
func rangeLocked(ls []lockedShard) {
	for _, l := range ls { // want `range copies .*lockedShard by value`
		_ = l.n
	}
}

// assign copies a shard into a new variable.
func assign(s *shard) {
	dup := *s // want `assignment copies .*shard by value`
	_ = dup
}

// pass copies a shard into a call.
func pass(s *shard) {
	sink(*s) // want `call passes .*shard by value`
}

// ret copies a shard out of a function.
func ret(s *shard) shard {
	return *s // want `return copies .*shard by value`
}

// ---------------------------------------------------------------------------
// Negative cases.

// rangeIndex iterates by index: no copy.
func rangeIndex(shards []shard) int64 {
	var total int64
	for i := range shards {
		total += shards[i].hits.Load()
	}
	return total
}

// rangePointers iterates over pointers: no copy.
func rangePointers(shards []*shard) int64 {
	var total int64
	for _, s := range shards {
		total += s.hits.Load()
	}
	return total
}

// rangeByPtr's element holds the mutex by pointer: copying is fine.
func rangeByPtr(xs []byPtr) int {
	total := 0
	for _, x := range xs {
		total += x.n
	}
	return total
}

// fresh constructs new values: composite literals and calls are not copies.
func fresh() {
	s := shard{}
	_ = s
	sinkPtr(&shard{})
}

// suppressed documents a deliberate exception.
func suppressed(shards []shard) {
	for _, s := range shards { //nolint:countercopy // fixture: read-only stats snapshot, divergence accepted
		_ = s
	}
}
