// Package symbolic is a fixture stand-in for repro/internal/symbolic: the
// analyzers match the Interner/Expr types by package *name*, so this
// miniature copy lets the testdata packages type-check without importing
// the real module.
package symbolic

// Interner hash-conses expressions.
type Interner struct{ _ int }

// Expr is an interned expression.
type Expr struct{ _ int }

// NewInterner returns a fresh interner.
func NewInterner() *Interner { return &Interner{} }

// Default returns the process-wide interner.
func Default() *Interner { return defaultInterner }

var defaultInterner = NewInterner()

// Const returns the constant c (Default interner).
//
// aliaslint:default-interner
func Const(c int64) *Expr { return defaultInterner.Const(c) }

// Sym returns the symbol s (Default interner).
//
// aliaslint:default-interner
func Sym(s string) *Expr { return defaultInterner.Sym(s) }

// Zero returns the constant 0 (Default interner).
//
// aliaslint:default-interner
func Zero() *Expr { return defaultInterner.Zero() }

// Const returns the interned constant c.
func (it *Interner) Const(c int64) *Expr { return &Expr{} }

// Sym returns the interned symbol s.
func (it *Interner) Sym(s string) *Expr { return &Expr{} }

// Zero returns the interned constant 0.
func (it *Interner) Zero() *Expr { return it.Const(0) }

// Add returns a+b.
func Add(a, b *Expr) *Expr { return a }

// Sub returns a-b.
func Sub(a, b *Expr) *Expr { return a }

// Equal reports a == b.
func Equal(a, b *Expr) bool { return a == b }

// Compare orders a against b.
func Compare(a, b *Expr) int {
	if a == b {
		return 0
	}
	return 1
}
