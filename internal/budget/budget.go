// Package budget tracks a process-wide memory budget for the alias service.
//
// A Tracker is deliberately passive: it combines the service's own
// accounting (the per-module MemBytes sums the registry already maintains)
// with a periodic runtime.ReadMemStats reconciliation, and reduces the pair
// to a watermark state — OK, Soft, or Hard — with hysteresis so the state
// does not flap around a boundary. It never takes degradation actions
// itself; the service's governor loop reads the state and applies the
// levers (cache shrink, module eviction, upload rejection, query shedding).
// Keeping the tracker free of callbacks is what keeps it deadlock-free:
// registry teardown can run while registry locks are held, so nothing in
// this package may call back into the service.
//
// All read paths (State, Used, Snapshot) are atomic loads — safe to call
// from scrape collectors and admission checks without contending with the
// reconcile path.
package budget

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// State is the tracker's watermark position. Ordering is meaningful:
// StateHard > StateSoft > StateOK, so admission checks compare with >=.
type State int32

const (
	// StateOK: usage below the soft watermark; no degradation.
	StateOK State = iota
	// StateSoft: usage crossed the soft watermark; the governor shrinks
	// memo caches and evicts unpinned LRU modules.
	StateSoft
	// StateHard: usage crossed the hard watermark; uploads are rejected
	// and query admission tightens.
	StateHard
)

// String renders the state the way /v1/stats and the metrics report it.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateSoft:
		return "soft"
	case StateHard:
		return "hard"
	}
	return "State(" + strconv.Itoa(int(s)) + ")"
}

// Watermark fractions of the limit, and the hysteresis factor applied when
// leaving a state: once usage crosses a watermark the state sticks until
// usage falls below recoverFrac × watermark, so a value oscillating right
// at the boundary does not flap degradation on and off every tick.
const (
	DefaultSoftFrac    = 0.70
	DefaultHardFrac    = 0.85
	DefaultRecoverFrac = 0.90
)

// Options tune a Tracker. The zero value uses the defaults above.
type Options struct {
	// SoftFrac and HardFrac place the watermarks as fractions of the
	// limit (0 = defaults). HardFrac is clamped to at least SoftFrac.
	SoftFrac, HardFrac float64
	// RecoverFrac is the hysteresis factor in (0, 1] (0 = default).
	RecoverFrac float64
	// ReadHeap overrides the live-heap probe (runtime.ReadMemStats
	// HeapAlloc by default). Tests inject deterministic pressure here.
	ReadHeap func() int64
}

// Tracker reduces (accounted bytes, live heap bytes) against a fixed limit
// to a watermark State. A nil Tracker is valid and permanently disabled.
type Tracker struct {
	limit, soft, hard int64
	recoverFrac       float64
	readHeap          func() int64

	accounted atomic.Int64
	heap      atomic.Int64
	state     atomic.Int32
	// transitions[s] counts entries into state s (ok entries are
	// recoveries). Indexed by State.
	transitions [3]atomic.Int64
	reconciles  atomic.Int64

	// mu serializes state recomputation so two concurrent reconciles
	// cannot interleave their read-modify-write of the state machine.
	// Never held during reads: every getter is an atomic load.
	mu sync.Mutex
}

// Snapshot is a coherent-enough point-in-time view of a Tracker, for
// /v1/stats and the metrics collectors. Both endpoints render the same
// atomics, and the values only change on reconcile, so an idle daemon
// reconciles exactly.
type Snapshot struct {
	Limit, Soft, Hard     int64
	Accounted, Heap, Used int64
	State                 State
	Transitions           [3]int64
	Reconciles            int64
}

// New builds a tracker for limit bytes. limit <= 0 returns nil: the
// disabled tracker, on which every method is a cheap no-op.
func New(limit int64, opts Options) *Tracker {
	if limit <= 0 {
		return nil
	}
	softFrac, hardFrac, recoverFrac := opts.SoftFrac, opts.HardFrac, opts.RecoverFrac
	if softFrac <= 0 || softFrac > 1 {
		softFrac = DefaultSoftFrac
	}
	if hardFrac <= 0 || hardFrac > 1 {
		hardFrac = DefaultHardFrac
	}
	if hardFrac < softFrac {
		hardFrac = softFrac
	}
	if recoverFrac <= 0 || recoverFrac > 1 {
		recoverFrac = DefaultRecoverFrac
	}
	read := opts.ReadHeap
	if read == nil {
		read = readHeapAlloc
	}
	return &Tracker{
		limit:       limit,
		soft:        int64(float64(limit) * softFrac),
		hard:        int64(float64(limit) * hardFrac),
		recoverFrac: recoverFrac,
		readHeap:    read,
	}
}

func readHeapAlloc() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// Enabled reports whether the tracker enforces a budget.
func (t *Tracker) Enabled() bool { return t != nil && t.limit > 0 }

// SetAccounted records the service-side accounting sum and recomputes the
// state. Accounting alone can cross a watermark (a burst of module builds)
// before the next heap probe notices.
func (t *Tracker) SetAccounted(n int64) {
	if !t.Enabled() {
		return
	}
	t.accounted.Store(n)
	t.recompute()
}

// Reconcile probes the live heap, recomputes the state from
// max(accounted, heap), and returns it. The governor calls this every tick.
func (t *Tracker) Reconcile() State {
	if !t.Enabled() {
		return StateOK
	}
	t.heap.Store(t.readHeap())
	t.reconciles.Add(1)
	t.recompute()
	return t.State()
}

// recompute advances the state machine. Rising crossings act immediately;
// falling transitions require usage below recoverFrac × the watermark that
// admitted the current state (hysteresis).
func (t *Tracker) recompute() {
	t.mu.Lock()
	defer t.mu.Unlock()
	used := t.Used()
	cur := t.State()
	next := cur
	below := func(mark int64) bool {
		return float64(used) < float64(mark)*t.recoverFrac
	}
	switch cur {
	case StateOK:
		switch {
		case used >= t.hard:
			next = StateHard
		case used >= t.soft:
			next = StateSoft
		}
	case StateSoft:
		switch {
		case used >= t.hard:
			next = StateHard
		case below(t.soft):
			next = StateOK
		}
	case StateHard:
		if below(t.hard) {
			if used >= t.soft {
				next = StateSoft
			} else {
				next = StateOK
			}
		}
	}
	if next != cur {
		t.state.Store(int32(next))
		t.transitions[next].Add(1)
	}
}

// State returns the current watermark state (StateOK when disabled).
func (t *Tracker) State() State {
	if !t.Enabled() {
		return StateOK
	}
	return State(t.state.Load())
}

// Used is the enforced figure: the larger of the accounting sum and the
// last heap probe. Accounting catches growth the heap probe has not seen
// yet (it only runs on reconcile); the heap catches everything the
// accounting model misses (goroutine stacks, request buffers, fragments).
func (t *Tracker) Used() int64 {
	if !t.Enabled() {
		return 0
	}
	if acc, heap := t.accounted.Load(), t.heap.Load(); acc > heap {
		return acc
	} else {
		return heap
	}
}

// Limit returns the configured budget (0 when disabled).
func (t *Tracker) Limit() int64 {
	if !t.Enabled() {
		return 0
	}
	return t.limit
}

// SoftBytes returns the soft watermark in bytes (0 when disabled).
func (t *Tracker) SoftBytes() int64 {
	if !t.Enabled() {
		return 0
	}
	return t.soft
}

// HardBytes returns the hard watermark in bytes (0 when disabled).
func (t *Tracker) HardBytes() int64 {
	if !t.Enabled() {
		return 0
	}
	return t.hard
}

// Snapshot reads every counter with atomic loads — no locks, so scrape
// collectors may call it on any path.
func (t *Tracker) Snapshot() Snapshot {
	if !t.Enabled() {
		return Snapshot{}
	}
	s := Snapshot{
		Limit:      t.limit,
		Soft:       t.soft,
		Hard:       t.hard,
		Accounted:  t.accounted.Load(),
		Heap:       t.heap.Load(),
		State:      t.State(),
		Reconciles: t.reconciles.Load(),
	}
	s.Used = s.Accounted
	if s.Heap > s.Used {
		s.Used = s.Heap
	}
	for i := range t.transitions {
		s.Transitions[i] = t.transitions[i].Load()
	}
	return s
}

// ProcessRSS returns the process's resident set size in bytes, read from
// /proc/self/statm, or 0 where the proc filesystem is unavailable. The
// soak scenario uses the exported gauge to assert RSS stays flat across
// thousands of module-churn cycles.
func ProcessRSS() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
