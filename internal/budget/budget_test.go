package budget

import "testing"

// fakeHeap is an injectable heap probe the tests drive directly.
type fakeHeap struct{ n int64 }

func (f *fakeHeap) read() int64 { return f.n }

func newTestTracker(limit int64, heap *fakeHeap) *Tracker {
	return New(limit, Options{ReadHeap: heap.read})
}

func TestDisabledTracker(t *testing.T) {
	var nilT *Tracker
	if nilT.Enabled() {
		t.Fatal("nil tracker reports enabled")
	}
	if st := nilT.Reconcile(); st != StateOK {
		t.Fatalf("nil tracker state = %v, want ok", st)
	}
	nilT.SetAccounted(1 << 40) // must not panic
	if nilT.Used() != 0 || nilT.Limit() != 0 {
		t.Fatal("nil tracker reports nonzero usage")
	}
	if tr := New(0, Options{}); tr != nil {
		t.Fatal("New(0) should return the disabled (nil) tracker")
	}
}

func TestWatermarkTransitions(t *testing.T) {
	heap := &fakeHeap{}
	tr := newTestTracker(1000, heap) // soft 700, hard 850
	if tr.SoftBytes() != 700 || tr.HardBytes() != 850 {
		t.Fatalf("watermarks = %d/%d, want 700/850", tr.SoftBytes(), tr.HardBytes())
	}

	heap.n = 100
	if st := tr.Reconcile(); st != StateOK {
		t.Fatalf("state at 100 = %v, want ok", st)
	}
	heap.n = 750
	if st := tr.Reconcile(); st != StateSoft {
		t.Fatalf("state at 750 = %v, want soft", st)
	}
	heap.n = 900
	if st := tr.Reconcile(); st != StateHard {
		t.Fatalf("state at 900 = %v, want hard", st)
	}
	// Skipping soft: OK jumps straight to hard on a big spike.
	heap.n = 10
	tr.Reconcile()
	heap.n = 900
	if st := tr.Reconcile(); st != StateHard {
		t.Fatalf("ok→hard jump = %v, want hard", st)
	}

	snap := tr.Snapshot()
	if snap.Transitions[StateSoft] != 1 || snap.Transitions[StateHard] != 2 || snap.Transitions[StateOK] != 1 {
		t.Fatalf("transitions = %v, want soft=1 hard=2 ok=1", snap.Transitions)
	}
}

func TestHysteresis(t *testing.T) {
	heap := &fakeHeap{}
	tr := newTestTracker(1000, heap) // soft 700, hard 850, recover ×0.90

	heap.n = 860
	if st := tr.Reconcile(); st != StateHard {
		t.Fatalf("state = %v, want hard", st)
	}
	// Just below the hard watermark is NOT enough to recover: the state
	// sticks until usage < 0.90 × 850 = 765.
	heap.n = 800
	if st := tr.Reconcile(); st != StateHard {
		t.Fatalf("state at 800 = %v, want hard (hysteresis)", st)
	}
	heap.n = 760
	if st := tr.Reconcile(); st != StateSoft {
		t.Fatalf("state at 760 = %v, want soft (recovered from hard, still ≥ soft)", st)
	}
	// Same story at the soft boundary: recovery needs < 0.90 × 700 = 630.
	heap.n = 650
	if st := tr.Reconcile(); st != StateSoft {
		t.Fatalf("state at 650 = %v, want soft (hysteresis)", st)
	}
	heap.n = 600
	if st := tr.Reconcile(); st != StateOK {
		t.Fatalf("state at 600 = %v, want ok", st)
	}
	// Hard recovery can drop straight to OK when usage collapsed.
	heap.n = 900
	tr.Reconcile()
	heap.n = 10
	if st := tr.Reconcile(); st != StateOK {
		t.Fatalf("hard→ok collapse = %v, want ok", st)
	}
}

func TestAccountedDominatesStaleHeap(t *testing.T) {
	heap := &fakeHeap{n: 100}
	tr := newTestTracker(1000, heap)
	tr.Reconcile()
	// A build burst pushes the accounting past the hard watermark before
	// the next heap probe: SetAccounted alone must flip the state.
	tr.SetAccounted(900)
	if st := tr.State(); st != StateHard {
		t.Fatalf("state after SetAccounted(900) = %v, want hard", st)
	}
	if got := tr.Used(); got != 900 {
		t.Fatalf("Used = %d, want 900 (max of accounted and heap)", got)
	}
	snap := tr.Snapshot()
	if snap.Accounted != 900 || snap.Heap != 100 || snap.Used != 900 {
		t.Fatalf("snapshot = %+v, want accounted 900 / heap 100 / used 900", snap)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{StateOK: "ok", StateSoft: "soft", StateHard: "hard"} {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestProcessRSS(t *testing.T) {
	// On linux (the CI platform) /proc/self/statm exists and a running test
	// binary is certainly resident with more than one page.
	if rss := ProcessRSS(); rss <= 0 {
		t.Skipf("ProcessRSS = %d (no /proc on this platform)", rss)
	}
}
