// Package rangeanal implements the symbolic range analysis of integers that
// bootstraps the pointer analysis (§3.3 of "Symbolic Range Analysis of
// Pointers", CGO'16). It is a sparse abstract interpretation over the
// SymbRanges lattice in the style of Blume & Eigenmann's symbolic range
// propagation:
//
//   - the *symbolic kernel* — names not expressible as functions of other
//     names: integer parameters and results of library (extern) and direct
//     calls — is bound to degenerate intervals [s, s];
//   - arithmetic propagates intervals; φ joins; e-SSA π-nodes intersect with
//     the branch condition translated to a symbolic bound;
//   - widening (∇ of §3.3) is applied at φ-functions, the cut set of the SSA
//     def-use graph, after the first visit; a descending sequence of fixed
//     size recovers precision lost to widening (§3.4, Fig. 12).
//
// The result maps every integer-typed ir.Value to an interval R(v); values
// loaded from memory are ⊤ by default (the analysis does not track memory,
// mirroring Fig. 9's treatment of loads).
//
// aliaslint:interner-scoped — every kernel symbol and constant this package
// mints goes through Options.Interner (Default unless the caller isolates
// the module), never through the package-level symbolic constructors.
package rangeanal

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/symbolic"
)

// Options tune the analysis; the zero value is the paper's configuration.
type Options struct {
	// DescendingSteps is the length of the descending sequence after
	// convergence (the paper uses 2; see Fig. 12). Negative disables the
	// descending sequence entirely (ablation).
	DescendingSteps int
	// Budget bounds the size of bound expressions (§3.8). 0 means
	// interval.DefaultBudget.
	Budget int
	// SymbolicLoads binds integer loads to fresh kernel symbols instead of
	// ⊤. Unsound for memory mutated in loops — available only for the
	// ablation study.
	SymbolicLoads bool
	// Interner receives every expression the analysis mints. nil means the
	// process-wide Default interner (expressions shared across modules); a
	// per-module interner isolates the module's node pool so eviction can
	// reclaim it.
	Interner *symbolic.Interner
}

func (o Options) withDefaults() Options {
	if o.DescendingSteps == 0 {
		o.DescendingSteps = 2
	}
	if o.Budget == 0 {
		o.Budget = interval.DefaultBudget
	}
	if o.Interner == nil {
		o.Interner = symbolic.Default()
	}
	return o
}

// Result holds R : V → SymbRanges for one module.
type Result struct {
	opts   Options
	ranges map[*ir.Value]interval.Interval
	// kern memoizes the degenerate kernel-symbol intervals minted for
	// extern/call results (and symbolic loads): transfer re-evaluates those
	// instructions on every fixpoint revisit, and rebuilding the qualified
	// symbol name each time would allocate a string per visit just to hit
	// the interner. Written only during analyzeFunc (single goroutine);
	// queries after Analyze are pure reads.
	kern map[*ir.Value]interval.Interval
}

// kernel returns the memoized [s, s] interval naming v's own value.
func (r *Result) kernel(v *ir.Value) interval.Interval {
	if iv, ok := r.kern[v]; ok {
		return iv
	}
	iv := interval.Point(r.opts.Interner.Sym(SymbolFor(v)))
	r.kern[v] = iv
	return iv
}

// Range returns R(v). Constants map to point intervals; untracked values
// (bools, pointers, anything unseen) map to ⊤.
func (r *Result) Range(v *ir.Value) interval.Interval {
	if c, ok := v.IsConst(); ok && v.Typ == ir.TInt {
		return interval.Point(r.opts.Interner.Const(c))
	}
	if iv, ok := r.ranges[v]; ok {
		return iv
	}
	return interval.Full()
}

// SymbolFor names the kernel symbol bound to a value: function-qualified so
// that symbols from different functions never collide.
func SymbolFor(v *ir.Value) string {
	if v.Func != nil {
		return v.Func.Name + "." + v.Name
	}
	return v.Name
}

// Analyze runs the range analysis over every function of m.
func Analyze(m *ir.Module, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{opts: opts, ranges: map[*ir.Value]interval.Interval{}, kern: map[*ir.Value]interval.Interval{}}
	for _, f := range m.Funcs {
		res.analyzeFunc(f)
	}
	return res
}

// AnalyzeFunc runs the analysis on a single function (used by tests).
func AnalyzeFunc(f *ir.Func, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{opts: opts, ranges: map[*ir.Value]interval.Interval{}, kern: map[*ir.Value]interval.Interval{}}
	res.analyzeFunc(f)
	return res
}

func (r *Result) analyzeFunc(f *ir.Func) {
	// Seed the symbolic kernel.
	for _, p := range f.Params {
		if p.Typ == ir.TInt {
			r.ranges[p] = interval.Point(r.opts.Interner.Sym(SymbolFor(p)))
		}
	}
	// Instruction evaluation order: reverse postorder of blocks.
	rpo := cfg.ReversePostorder(f)
	var insts []*ir.Instr
	for _, b := range rpo {
		for _, in := range b.Instrs {
			if in.Res != nil && in.Res.Typ == ir.TInt {
				insts = append(insts, in)
			}
		}
	}
	// users[v] = instructions whose transfer reads v.
	users := map[*ir.Value][]*ir.Instr{}
	for _, in := range insts {
		for _, a := range in.Args {
			if a.Typ == ir.TInt && a.Kind != ir.VConst {
				users[a] = append(users[a], in)
			}
		}
	}
	// During the ascending phase unvisited values are ⊥, not ⊤ (Range's
	// default applies only to values the analysis never tracks).
	for _, in := range insts {
		r.ranges[in.Res] = interval.Empty()
	}

	// Ascending phase with widening at φ.
	visited := map[*ir.Instr]bool{}
	inWork := map[*ir.Instr]bool{}
	work := make([]*ir.Instr, len(insts))
	copy(work, insts)
	for _, in := range insts {
		inWork[in] = true
	}
	steps := 0
	limit := 64 * (len(insts) + 1) // safety net; widening converges far sooner
	for len(work) > 0 {
		if steps++; steps > limit {
			panic(fmt.Sprintf("rangeanal: fixpoint did not converge in %s", f.Name))
		}
		in := work[0]
		work = work[1:]
		inWork[in] = false
		old := r.ranges[in.Res]
		next := r.transfer(in)
		if in.Op == ir.OpPhi && visited[in] {
			next = interval.Widen(old, interval.Join(old, next))
		}
		visited[in] = true
		next = next.Clamp(r.opts.Budget)
		if interval.Equal(old, next) {
			continue
		}
		r.ranges[in.Res] = next
		for _, u := range users[in.Res] {
			if !inWork[u] {
				inWork[u] = true
				work = append(work, u)
			}
		}
	}

	// Descending sequence: recompute in RPO, narrowing at φ.
	for pass := 0; pass < r.opts.DescendingSteps; pass++ {
		for _, in := range insts {
			next := r.transfer(in)
			if in.Op == ir.OpPhi {
				next = interval.Narrow(r.ranges[in.Res], next)
			}
			r.ranges[in.Res] = next.Clamp(r.opts.Budget)
		}
	}
}

// transfer evaluates one instruction's abstract semantics.
func (r *Result) transfer(in *ir.Instr) interval.Interval {
	R := r.Range
	switch in.Op {
	case ir.OpCopy:
		return R(in.Args[0])
	case ir.OpAdd:
		return interval.Add(R(in.Args[0]), R(in.Args[1]))
	case ir.OpSub:
		return interval.Sub(R(in.Args[0]), R(in.Args[1]))
	case ir.OpMul:
		return interval.Mul(R(in.Args[0]), R(in.Args[1]))
	case ir.OpDiv:
		return interval.Div(R(in.Args[0]), R(in.Args[1]))
	case ir.OpRem:
		return interval.Rem(R(in.Args[0]), R(in.Args[1]))
	case ir.OpPhi:
		acc := interval.Empty()
		for _, a := range in.Args {
			acc = interval.Join(acc, R(a))
		}
		return acc
	case ir.OpPi:
		return interval.Meet(R(in.Args[0]), PiBound(in.Pred, R(in.Args[1])))
	case ir.OpExtern, ir.OpCall:
		// Kernel symbol: the value is opaque but nameable (§3.3: "variables
		// assigned with values returned from library functions").
		return r.kernel(in.Res)
	case ir.OpLoad:
		if r.opts.SymbolicLoads {
			return r.kernel(in.Res)
		}
		return interval.Full()
	}
	return interval.Full()
}

// PiBound translates "x pred bound" into the interval x is intersected with,
// given the bound's range (shared with the pointer analysis, which applies
// the same translation componentwise per Fig. 9).
func PiBound(pred ir.Pred, bound interval.Interval) interval.Interval {
	if bound.IsEmpty() {
		return interval.Full() // no information
	}
	switch pred {
	case ir.PLt:
		hi := bound.Hi()
		if !hi.IsInf() {
			hi = symbolic.AddConst(hi, -1)
		}
		return interval.Of(symbolic.NegInf(), hi)
	case ir.PLe:
		return interval.Of(symbolic.NegInf(), bound.Hi())
	case ir.PGt:
		lo := bound.Lo()
		if !lo.IsInf() {
			lo = symbolic.AddConst(lo, 1)
		}
		return interval.Of(lo, symbolic.PosInf())
	case ir.PGe:
		return interval.Of(bound.Lo(), symbolic.PosInf())
	case ir.PEq:
		return bound
	default: // PNe carries no interval information
		return interval.Full()
	}
}
