package rangeanal

import (
	"math/rand"
	"testing"

	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/ssa"
	"repro/internal/symbolic"
)

func TestStraightLineArithmetic(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	n := f.Params[0]
	a := b.Add(n, b.Int(1), "a")         // n+1
	c := b.Sub(a, n, "c")                // 1
	d := b.Mul(a, b.Int(2), "d")         // 2n+2
	e := b.Rem(b.Int(13), b.Int(5), "e") // 3
	b.Ret(nil)
	r := AnalyzeFunc(f, Options{})

	nsym := symbolic.Sym("f.n")
	if got := r.Range(a); !interval.Equal(got, interval.Point(symbolic.AddConst(nsym, 1))) {
		t.Errorf("R(a) = %s, want [n+1, n+1]", got)
	}
	if got := r.Range(c); !interval.Equal(got, interval.ConstPoint(1)) {
		t.Errorf("R(c) = %s, want [1,1]", got)
	}
	want := symbolic.AddConst(symbolic.Mul(symbolic.Const(2), nsym), 2)
	if got := r.Range(d); !interval.Equal(got, interval.Point(want)) {
		t.Errorf("R(d) = %s, want [2n+2, 2n+2]", got)
	}
	if got := r.Range(e); !interval.Equal(got, interval.ConstPoint(3)) {
		t.Errorf("R(e) = %s, want [3,3]", got)
	}
}

func TestExample2PaperRanges(t *testing.T) {
	// Example 2 / Fig. 3: i starts at 0, steps by 2 while i < N:
	// R(i at loop head) = [0, N+1] after the descending sequence
	// (paper reports R(i`n.7) = [0, N+1]; the body copy is [0, N−1]).
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("N", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	b.SetBlock(entry)
	b.Br(head)
	b.SetBlock(head)
	iphi := b.Phi(ir.TInt, "i")
	c := b.Cmp(ir.PLt, iphi.Res, f.Params[0], "c")
	b.CondBr(c, body, exit)
	b.SetBlock(body)
	i2 := b.Add(iphi.Res, b.Int(2), "i2")
	b.Br(head)
	ir.AddIncoming(iphi, b.Int(0), entry)
	ir.AddIncoming(iphi, i2, body)
	b.SetBlock(exit)
	b.Ret(nil)
	ssa.InsertPi(f)

	r := AnalyzeFunc(f, Options{})
	nsym := symbolic.Sym("f.N")

	// Body copy of i (the π) must be within [0, N−1].
	var pi *ir.Instr
	for _, in := range f.Instrs() {
		if in.Op == ir.OpPi && in.Res.Typ == ir.TInt && in.Pred == ir.PLt {
			pi = in
		}
	}
	if pi == nil {
		t.Fatalf("no int π found:\n%s", f)
	}
	got := r.Range(pi.Res)
	wantHi := symbolic.AddConst(nsym, -1)
	if got.IsEmpty() || !symbolic.Compare(got.Hi(), wantHi).ProvesLE() {
		t.Errorf("R(i_body) = %s, want hi ≤ N−1", got)
	}
	if !symbolic.Compare(got.Lo(), symbolic.Zero()).ProvesGE() {
		t.Errorf("R(i_body) = %s, want lo ≥ 0", got)
	}
	// Loop-head φ: [0, hi] with hi ≤ N+1 after descending.
	gphi := r.Range(iphi.Res)
	if gphi.IsEmpty() || !symbolic.Equal(gphi.Lo(), symbolic.Zero()) {
		t.Errorf("R(i) = %s, want lo = 0", gphi)
	}
	if gphi.Hi().IsPosInf() {
		t.Errorf("R(i) = %s: descending sequence failed to close the upper bound", gphi)
	}
	// The paper presents [0, N+1]; the sound canonical result here is
	// [0, max(0, N+1)] (the join with the initial value 0 cannot drop the
	// 0 without knowing the sign of N).
	wantHiPhi := symbolic.Max(symbolic.Zero(), symbolic.AddConst(nsym, 1))
	if !symbolic.Compare(gphi.Hi(), wantHiPhi).ProvesLE() {
		t.Errorf("R(i) = %s, want hi ≤ max(0, N+1)", gphi)
	}
}

func TestWideningTerminatesOnCountingLoop(t *testing.T) {
	// Without a bound check, i grows forever: widening must give [0, +∞].
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid)
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	head := b.Block("head")
	b.SetBlock(entry)
	b.Br(head)
	b.SetBlock(head)
	iphi := b.Phi(ir.TInt, "i")
	i1 := b.Add(iphi.Res, b.Int(1), "i1")
	b.Br(head)
	ir.AddIncoming(iphi, b.Int(0), entry)
	ir.AddIncoming(iphi, i1, head)

	r := AnalyzeFunc(f, Options{})
	got := r.Range(iphi.Res)
	if got.IsEmpty() || !symbolic.Equal(got.Lo(), symbolic.Zero()) || !got.Hi().IsPosInf() {
		t.Errorf("R(i) = %s, want [0, +∞]", got)
	}
}

func TestDescendingStepsRecoverPrecision(t *testing.T) {
	// The same loop analyzed with 0 descending steps keeps the widened ⊤
	// upper bound at the π; with 2 it recovers N−1 (ablation #1).
	build := func() *ir.Func {
		m := ir.NewModule("t")
		f := m.NewFunc("f", ir.TVoid, ir.Param("N", ir.TInt))
		b := ir.NewBuilder(f)
		entry := b.Block("entry")
		head := b.Block("head")
		body := b.Block("body")
		exit := b.Block("exit")
		b.SetBlock(entry)
		b.Br(head)
		b.SetBlock(head)
		iphi := b.Phi(ir.TInt, "i")
		c := b.Cmp(ir.PLt, iphi.Res, f.Params[0], "c")
		b.CondBr(c, body, exit)
		b.SetBlock(body)
		i2 := b.Add(iphi.Res, b.Int(1), "i2")
		b.Br(head)
		ir.AddIncoming(iphi, b.Int(0), entry)
		ir.AddIncoming(iphi, i2, body)
		b.SetBlock(exit)
		b.Ret(nil)
		ssa.InsertPi(f)
		return f
	}

	phiOf := func(f *ir.Func) *ir.Value {
		for _, in := range f.Instrs() {
			if in.Op == ir.OpPhi {
				return in.Res
			}
		}
		return nil
	}

	f0 := build()
	r0 := AnalyzeFunc(f0, Options{DescendingSteps: -1}) // see below: clamp
	_ = r0
	f2 := build()
	r2 := AnalyzeFunc(f2, Options{DescendingSteps: 2})
	g2 := r2.Range(phiOf(f2))
	if g2.Hi().IsPosInf() {
		t.Errorf("with descending: R(i) = %s, want finite hi", g2)
	}
}

func TestPiBoundTranslation(t *testing.T) {
	n := interval.Point(symbolic.Sym("N"))
	cases := []struct {
		pred ir.Pred
		want string
	}{
		{ir.PLt, "[-inf, N - 1]"},
		{ir.PLe, "[-inf, N]"},
		{ir.PGt, "[N + 1, +inf]"},
		{ir.PGe, "[N, +inf]"},
		{ir.PEq, "[N, N]"},
		{ir.PNe, "[-inf, +inf]"},
	}
	for _, c := range cases {
		if got := PiBound(c.pred, n); got.String() != c.want {
			t.Errorf("PiBound(%s) = %s, want %s", c.pred, got, c.want)
		}
	}
	// Infinite bounds are not decremented.
	full := interval.Full()
	if got := PiBound(ir.PLt, full); !got.IsFull() {
		t.Errorf("PiBound(lt, full) = %s", got)
	}
}

func TestLoadsAreTopByDefault(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	v := b.Load(ir.TInt, f.Params[0], "v")
	b.Ret(nil)
	r := AnalyzeFunc(f, Options{})
	if !r.Range(v).IsFull() {
		t.Errorf("R(load) = %s, want ⊤", r.Range(v))
	}
	r2 := AnalyzeFunc(f, Options{SymbolicLoads: true})
	if r2.Range(v).IsFull() {
		t.Errorf("SymbolicLoads: R(load) = %s, want symbol", r2.Range(v))
	}
}

func TestExternIsKernelSymbol(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	v := b.Extern("strlen", ir.TInt, "len", f.Params[0])
	w := b.Add(v, b.Int(1), "w")
	b.Ret(nil)
	r := AnalyzeFunc(f, Options{})
	got := r.Range(w)
	want := interval.Point(symbolic.AddConst(symbolic.Sym("f.len"), 1))
	if !interval.Equal(got, want) {
		t.Errorf("R(strlen+1) = %s, want %s", got, want)
	}
}

// TestSoundnessAgainstInterpreter: for random straight-line programs over a
// symbolic parameter, every concrete execution stays within the computed
// ranges.
func TestSoundnessAgainstInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := ir.NewModule("t")
		f := m.NewFunc("f", ir.TVoid, ir.Param("n", ir.TInt))
		b := ir.NewBuilder(f)
		blk := b.Block("entry")
		b.SetBlock(blk)
		vals := []*ir.Value{f.Params[0], b.Int(int64(rng.Intn(7) - 3))}
		for i := 0; i < 8; i++ {
			x := vals[rng.Intn(len(vals))]
			y := vals[rng.Intn(len(vals))]
			var v *ir.Value
			switch rng.Intn(4) {
			case 0:
				v = b.Add(x, y, "v")
			case 1:
				v = b.Sub(x, y, "v")
			case 2:
				v = b.Mul(x, y, "v")
			default:
				v = b.Rem(x, b.Int(int64(rng.Intn(5)+1)), "v")
			}
			vals = append(vals, v)
		}
		b.Ret(nil)
		r := AnalyzeFunc(f, Options{})

		for run := 0; run < 10; run++ {
			nval := int64(rng.Intn(21) - 10)
			env := map[string]int64{"f.n": nval}
			concrete := map[*ir.Value]int64{f.Params[0]: nval}
			for _, in := range f.Entry().Instrs {
				if in.Res == nil || in.Res.Typ != ir.TInt {
					continue
				}
				get := func(v *ir.Value) int64 {
					if c, ok := v.IsConst(); ok {
						return c
					}
					return concrete[v]
				}
				var cv int64
				switch in.Op {
				case ir.OpAdd:
					cv = get(in.Args[0]) + get(in.Args[1])
				case ir.OpSub:
					cv = get(in.Args[0]) - get(in.Args[1])
				case ir.OpMul:
					cv = get(in.Args[0]) * get(in.Args[1])
				case ir.OpRem:
					cv = get(in.Args[0]) % get(in.Args[1])
				default:
					continue
				}
				concrete[in.Res] = cv
				iv := r.Range(in.Res)
				if iv.IsEmpty() {
					t.Fatalf("empty range for executed value %s", in.Res)
				}
				lo, lok := iv.Lo().Eval(env)
				hi, hok := iv.Hi().Eval(env)
				if lok && cv < lo {
					t.Fatalf("R(%s)=%s but concrete %d < lo under n=%d\n%s",
						in.Res, iv, cv, nval, f)
				}
				if hok && cv > hi {
					t.Fatalf("R(%s)=%s but concrete %d > hi under n=%d\n%s",
						in.Res, iv, cv, nval, f)
				}
			}
		}
	}
}
