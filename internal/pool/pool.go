// Package pool provides the bounded fan-out primitives shared by the
// evaluation pipeline (internal/experiments) and the alias-query service
// (internal/service): a fixed-size worker pool that indexes work items, and
// the chunking heuristic that splits long query sweeps into pieces large
// enough to amortize scheduling but numerous enough to balance uneven costs.
//
// The scheduling contract matters to both clients: ForEach hands out item
// indices, and callers write results into per-index slots, so reductions can
// run in index order afterwards and stay byte-identical for every worker
// count.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded worker pool. The zero value runs everything on the
// calling goroutine.
type Pool struct {
	// Parallel is the worker count. 0 or 1 means sequential; negative
	// means GOMAXPROCS.
	Parallel int
}

// Workers resolves Parallel into a concrete worker count (≥ 1).
func (p *Pool) Workers() int {
	switch {
	case p == nil, p.Parallel == 0:
		return 1
	case p.Parallel < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return p.Parallel
	}
}

// ForEach runs f(0..n-1) on the pool's workers, in index order when
// sequential. It returns once every call has completed. f must be safe for
// concurrent invocation when the pool is parallel.
func (p *Pool) ForEach(n int, f func(i int)) {
	w := p.Workers()
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done, no
// further item starts (items already running finish — f is never
// interrupted mid-call) and the context's error is returned. The service
// threads per-request deadlines through here so a shed or timed-out batch
// stops consuming workers instead of evaluating to completion. A nil ctx
// behaves exactly like ForEach.
func (p *Pool) ForEachCtx(ctx context.Context, n int, f func(i int)) error {
	done := func() <-chan struct{} {
		if ctx == nil {
			return nil
		}
		return ctx.Done()
	}()
	w := p.Workers()
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			f(i)
		}
		return nil
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return err
}

// Queue is a fixed-worker task queue for fire-and-forget jobs whose
// lifetime outlives one request — the service's async module builds
// foremost. Unlike Pool.ForEach (which scatters a known index range and
// joins), a Queue accepts work items over time and runs them on a bounded
// set of long-lived workers, with a bounded backlog so producers get
// backpressure instead of unbounded queue growth.
type Queue struct {
	tasks chan queueTask
	wg    sync.WaitGroup
	depth atomic.Int64

	// Observer, when set, is called after each task finishes with the time
	// the task waited in the backlog and the time it spent running. Set it
	// before the first Submit — the channel send in Submit establishes the
	// happens-before edge workers rely on to read it without a lock.
	Observer func(wait, run time.Duration)

	mu     sync.Mutex
	closed bool
}

type queueTask struct {
	f  func()
	at time.Time
}

// NewQueue starts a queue with the given worker count (min 1) and backlog
// capacity (min 1 beyond the in-flight work).
func NewQueue(workers, backlog int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if backlog < 1 {
		backlog = 1
	}
	q := &Queue{tasks: make(chan queueTask, backlog)}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for t := range q.tasks {
				started := time.Now()
				t.f()
				q.depth.Add(-1)
				if q.Observer != nil {
					q.Observer(started.Sub(t.at), time.Since(started))
				}
			}
		}()
	}
	return q
}

// Submit enqueues f without blocking. It reports false when the backlog is
// full or the queue is closed — the caller decides whether that is "try
// again later" (HTTP 503) or a hard error.
//
// A submitted task owns any registry pins captured in f: exactly one worker
// goroutine runs it (or the final drain does, on Close), so a deferred
// Release inside f runs exactly once.
//
// aliaslint:pin-transfer
func (q *Queue) Submit(f func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	// Count before the send: a worker may pick the task up (and decrement)
	// the instant it lands in the channel, so incrementing afterwards could
	// let Len go transiently negative.
	q.depth.Add(1)
	select {
	case q.tasks <- queueTask{f: f, at: time.Now()}:
		return true
	default:
		q.depth.Add(-1)
		return false
	}
}

// Len reports the submitted-but-unfinished task count: backlog plus
// in-flight work. It is the build-queue depth the service's readiness probe
// and metrics export.
func (q *Queue) Len() int {
	return int(q.depth.Load())
}

// Close stops accepting work, drains the backlog, and waits for in-flight
// tasks to finish. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.tasks)
	}
	q.mu.Unlock()
	q.wg.Wait()
}

// minChunk is the floor ChunkSize returns: chunks below ~1k items pay more
// in scheduling than they gain in balance for alias-query workloads.
const minChunk = 1024

// ChunkSize splits n items over w workers: enough chunks (≈ 4 per worker)
// to balance uneven item costs, but never smaller than the amortization
// floor.
func ChunkSize(n, w int) int {
	if w < 1 {
		w = 1
	}
	c := n / (w * 4)
	if c < minChunk {
		c = minChunk
	}
	return c
}

// Chunks cuts [0, n) into half-open ranges of at most size items and returns
// their bounds. Callers feed the chunk list to ForEach and index per-chunk
// result slots with it.
func Chunks(n, size int) [][2]int {
	if n <= 0 {
		return nil
	}
	if size < 1 {
		size = 1
	}
	out := make([][2]int, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
