package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		parallel int
		want     int
	}{
		{0, 1},
		{1, 1},
		{7, 7},
		{-1, runtime.GOMAXPROCS(0)},
	}
	for _, c := range cases {
		p := &Pool{Parallel: c.parallel}
		if got := p.Workers(); got != c.want {
			t.Errorf("Pool{%d}.Workers() = %d, want %d", c.parallel, got, c.want)
		}
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, parallel := range []int{0, 1, 4, -1} {
		p := &Pool{Parallel: parallel}
		const n = 1000
		var hits [n]atomic.Int32
		p.ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallel=%d: index %d visited %d times", parallel, i, got)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	p := &Pool{}
	var seen []int
	p.ForEach(5, func(i int) { seen = append(seen, i) })
	for i, v := range seen {
		if i != v {
			t.Fatalf("sequential ForEach out of order: %v", seen)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("sequential ForEach visited %d of 5", len(seen))
	}
}

func TestChunkSize(t *testing.T) {
	if got := ChunkSize(100, 4); got != minChunk {
		t.Errorf("small n: ChunkSize = %d, want floor %d", got, minChunk)
	}
	if got := ChunkSize(1<<20, 4); got != (1<<20)/16 {
		t.Errorf("large n: ChunkSize = %d, want %d", got, (1<<20)/16)
	}
	if got := ChunkSize(10, 0); got != minChunk {
		t.Errorf("w=0: ChunkSize = %d, want %d", got, minChunk)
	}
}

func TestChunksCoverRange(t *testing.T) {
	for _, n := range []int{0, 1, 1023, 1024, 1025, 5000} {
		chunks := Chunks(n, 1024)
		next := 0
		for _, c := range chunks {
			if c[0] != next || c[1] <= c[0] || c[1] > n {
				t.Fatalf("n=%d: bad chunk %v (next=%d)", n, c, next)
			}
			next = c[1]
		}
		if next != n {
			t.Fatalf("n=%d: chunks stop at %d", n, next)
		}
	}
}

func TestQueueRunsEverySubmittedTask(t *testing.T) {
	q := NewQueue(3, 64)
	var done atomic.Int64
	const n = 50
	for i := 0; i < n; i++ {
		if !q.Submit(func() { done.Add(1) }) {
			t.Fatalf("submit %d refused below backlog", i)
		}
	}
	q.Close()
	if got := done.Load(); got != n {
		t.Errorf("ran %d of %d tasks", got, n)
	}
	if q.Submit(func() {}) {
		t.Error("submit accepted after Close")
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(1, 1)
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	if !q.Submit(func() { started.Done(); <-release }) {
		t.Fatal("first submit refused")
	}
	started.Wait() // worker is now blocked; backlog is empty
	if !q.Submit(func() {}) {
		t.Fatal("backlog slot refused")
	}
	if q.Submit(func() {}) {
		t.Error("submit accepted past a full backlog")
	}
	close(release)
	q.Close()
	q.Close() // idempotent
}

func TestChunkedForEachCoversRange(t *testing.T) {
	p := &Pool{Parallel: 4}
	const n = 5000
	var hits [n]atomic.Int32
	chunks := Chunks(n, ChunkSize(n, p.Workers()))
	p.ForEach(len(chunks), func(c int) {
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hits[i].Load())
		}
	}
}

func TestQueueDepthAndObserver(t *testing.T) {
	q := NewQueue(1, 4)
	var waits atomic.Int64
	q.Observer = func(wait, run time.Duration) {
		if wait < 0 || run < 0 {
			t.Errorf("negative observation: wait=%v run=%v", wait, run)
		}
		waits.Add(1)
	}
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	q.Submit(func() { started.Done(); <-release })
	started.Wait() // one task in flight, none queued
	q.Submit(func() {})
	q.Submit(func() {})
	if got := q.Len(); got != 3 {
		t.Errorf("Len = %d with 1 running + 2 queued, want 3", got)
	}
	close(release)
	q.Close()
	if got := q.Len(); got != 0 {
		t.Errorf("Len = %d after drain, want 0", got)
	}
	if got := waits.Load(); got != 3 {
		t.Errorf("observer fired %d times, want 3", got)
	}
}

// TestForEachCtxRunsAll: with a live context the indexed contract matches
// ForEach exactly, sequential and parallel.
func TestForEachCtxRunsAll(t *testing.T) {
	for _, par := range []int{0, 4} {
		p := &Pool{Parallel: par}
		const n = 100
		var hits [n]atomic.Int32
		if err := p.ForEachCtx(context.Background(), n, func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatalf("Parallel=%d: err = %v", par, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("Parallel=%d: index %d ran %d times, want 1", par, i, hits[i].Load())
			}
		}
	}
}

// TestForEachCtxNilContext: nil behaves like ForEach (the RunBatch callers
// that have no deadline configured pass their request context, but library
// callers may pass nil).
func TestForEachCtxNilContext(t *testing.T) {
	p := &Pool{Parallel: 2}
	var ran atomic.Int32
	if err := p.ForEachCtx(nil, 10, func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d, want 10", ran.Load())
	}
}

// TestForEachCtxCancelStopsDispatch: cancelling mid-run stops new items and
// surfaces the context error. The first item blocks until it has cancelled
// the context, so the dispatcher cannot race ahead and finish everything.
func TestForEachCtxCancelStopsDispatch(t *testing.T) {
	for _, par := range []int{0, 2} {
		p := &Pool{Parallel: par}
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		const n = 10_000
		err := p.ForEachCtx(ctx, n, func(i int) {
			if i < p.Workers() {
				cancel() // the first items each worker sees stop the run
			}
			ran.Add(1)
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("Parallel=%d: err = %v, want context.Canceled", par, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("Parallel=%d: all %d items ran despite cancellation", par, got)
		}
	}
}

// TestForEachCtxPreCancelled: an already-dead context runs nothing.
func TestForEachCtxPreCancelled(t *testing.T) {
	p := &Pool{Parallel: 4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	if err := p.ForEachCtx(ctx, 50, func(int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Parallel dispatch may hand a worker an item or two before observing
	// Done; "nothing started" is only guaranteed sequentially.
	if seq := (&Pool{}); true {
		ran.Store(0)
		if err := seq.ForEachCtx(ctx, 50, func(int) { ran.Add(1) }); err != context.Canceled {
			t.Fatalf("sequential err = %v, want context.Canceled", err)
		}
		if ran.Load() != 0 {
			t.Fatalf("sequential ran %d items on a dead context, want 0", ran.Load())
		}
	}
}
