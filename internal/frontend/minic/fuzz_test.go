package minic

import (
	"strings"
	"testing"
)

// FuzzCompile checks the frontend never panics: any input either compiles
// to a verified module or returns a positioned error.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		prepareSrc,
		`func f() {}`,
		`func f(p ptr, n int) int { return n; }`,
		`global g[8]; func f() { *(g + 1) = 2; }`,
		`func f(n int) { var p ptr = malloc(n); while (n > 0) { *p = n; n = n - 1; } }`,
		`func f() { if (1 < 2) { } else { } }`,
		`func f(`,
		`}{`,
		`func f() { var x int = ; }`,
		`func f() { *1 = 2; }`,
		"func f() { // comment\n }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Compile("fuzz", src)
		if err == nil && m == nil {
			t.Fatal("nil module without error")
		}
		if err != nil && !strings.Contains(err.Error(), ":") {
			t.Fatalf("error lacks position: %q", err)
		}
	})
}
