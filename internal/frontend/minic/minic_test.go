package minic

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/ssa"
)

// prepareSrc is the paper's Fig. 1 program written in MiniC.
const prepareSrc = `
// Fig. 1 of the paper: serialize a message as id bytes then payload.
func prepare(p ptr, n int, m ptr) {
  var i ptr = p;
  var e ptr = p + n;
  while (i < e) {
    *i = 0;
    *(i + 1) = 255;
    i = i + 2;
  }
  var f ptr = e + strlen(m);
  while (i < f) {
    *i = *m;
    m = m + 1;
  }
}

func main() int {
  var z int = atoi();
  var b ptr = malloc(z);
  var s ptr = malloc(strlen2());
  prepare(b, z, s);
  return 0;
}
`

func TestCompilePrepare(t *testing.T) {
	m, err := Compile("fig1", prepareSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := ssa.VerifyModuleSSA(m); err != nil {
		t.Fatalf("ssa verify: %v", err)
	}
	s := m.Func("prepare").String()
	// Locals must be fully promoted and π-nodes present.
	if strings.Contains(s, "alloc stack") {
		t.Errorf("locals not promoted:\n%s", s)
	}
	if !strings.Contains(s, "phi") || !strings.Contains(s, "pi ") {
		t.Errorf("missing φ or π:\n%s", s)
	}
}

func TestCompiledPrepareDisambiguates(t *testing.T) {
	// The whole point: the MiniC pipeline must reach the same analysis
	// result as the hand-built IR — the two loops' stores are no-alias.
	m, err := Compile("fig1", prepareSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := pointer.Analyze(m, pointer.Options{})
	var stores []*ir.Value
	for _, in := range m.Func("prepare").Instrs() {
		if in.Op == ir.OpStore {
			stores = append(stores, in.Args[0])
		}
	}
	if len(stores) != 3 {
		t.Fatalf("want 3 stores, got %d:\n%s", len(stores), m.Func("prepare"))
	}
	ans, why := a.Query(stores[0], stores[2])
	if ans != pointer.NoAlias {
		t.Errorf("loop1 vs loop2 store: %s (want no-alias)\nGR1=%s\nGR2=%s",
			ans, a.GR.Value(stores[0]), a.GR.Value(stores[2]))
	}
	if why != pointer.ReasonGlobalRange {
		t.Errorf("attribution = %s, want global-range", why)
	}
}

func TestIfElseAndReturns(t *testing.T) {
	src := `
func pick(a int, b int) int {
  if (a < b) {
    return a;
  } else {
    return b;
  }
}
func clamp(x int, hi int) int {
  if (x > hi) {
    x = hi;
  }
  return x;
}
`
	m, err := Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := ssa.VerifyModuleSSA(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestGlobalsAndLoadp(t *testing.T) {
	src := `
global table[64];
func use(i int) {
  *(table + i) = 7;
  var p ptr = loadp(table);
  *p = 1;
}
`
	m, err := Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(m.Globals) != 1 || m.Globals[0].Size != 64 {
		t.Fatalf("global not lowered: %+v", m.Globals)
	}
	if err := ssa.VerifyModuleSSA(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestFreeInvalidatesVariable(t *testing.T) {
	src := `
func f(n int) {
  var p ptr = malloc(n);
  *p = 1;
  free(p);
}
`
	m, err := Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	found := false
	for _, in := range m.Func("f").Instrs() {
		if in.Op == ir.OpFree {
			found = true
		}
	}
	if !found {
		t.Errorf("free not lowered:\n%s", m.Func("f"))
	}
}

func TestNestedLoopsAndScopes(t *testing.T) {
	src := `
func grid(p ptr, w int, h int) {
  var y int = 0;
  while (y < h) {
    var x int = 0;
    while (x < w) {
      var q ptr = p + (y * w + x);
      *q = 0;
      x = x + 1;
    }
    y = y + 1;
  }
}
`
	m, err := Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := ssa.VerifyModuleSSA(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestBlockScoping(t *testing.T) {
	src := `
func f(c int) int {
  if (c > 0) {
    var t int = 1;
    c = c + t;
  } else {
    var t int = 2;
    c = c + t;
  }
  return c;
}
`
	if _, err := Compile("t", src); err != nil {
		t.Fatalf("sibling scopes may reuse names: %v", err)
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", `func f() { x = 1; }`, "undeclared"},
		{"type mismatch", `func f(p ptr) { var x int = p; }`, "cannot initialize"},
		{"ptr arith", `func f(p ptr, q ptr) { var x ptr = p + q; }`, "invalid operands"},
		{"cond not bool", `func f(n int) { if (n) { } }`, "condition must be a comparison"},
		{"void misuse", `func g() {} func f() { var x int = g(); }`, "void value"},
		{"dup var", `func f() { var x int; var x int; }`, "duplicate declaration"},
		{"dup func", `func f() {} func f() {}`, "duplicate function"},
		{"ret void val", `func f() { return 3; }`, "void function"},
		{"ret missing", `func f() int { return; }`, "must return"},
		{"bad arg count", `func g(a int) {} func f() { g(); }`, "takes 1 arguments"},
		{"bad arg type", `func g(a int) {} func f(p ptr) { g(p); }`, "want int"},
		{"cmp mixed", `func f(p ptr, n int) { if (p < n) { } }`, "cannot compare"},
		{"assign global", `global g[4]; func f() { g = null; }`, "cannot assign to global"},
		{"free int", `func f(n int) { free(n); }`, "free takes a ptr"},
	}
	for _, c := range cases {
		_, err := Compile("t", c.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q, got success", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func`,
		`func f( {`,
		`func f() { var ; }`,
		`func f() { 1 + ; }`,
		`func f() { while (1 < 2) }`,
		`global g;`,
		`func f() { @ }`,
		`xyz`,
	}
	for _, src := range cases {
		if _, err := Compile("t", src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestErrorsArePositioned(t *testing.T) {
	src := "func f() {\n  x = 1;\n}"
	_, err := Compile("t", src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:") {
		t.Errorf("error lacks line position: %q", err)
	}
}

func TestExternCallsBecomeKernelSymbols(t *testing.T) {
	src := `
func f(p ptr) {
  var n int = strlen(p);
  *(p + n) = 0;
}
`
	m, err := Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	found := false
	for _, in := range m.Func("f").Instrs() {
		if in.Op == ir.OpExtern && in.Sym == "strlen" {
			found = true
		}
	}
	if !found {
		t.Errorf("extern call not lowered:\n%s", m.Func("f"))
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "// leading comment\nfunc f() { // trailing\n // inner\n }\n"
	if _, err := Compile("t", src); err != nil {
		t.Fatalf("comments should lex away: %v", err)
	}
}
