// Package minic implements a small C-like frontend for the analysis
// pipeline: a lexer, recursive-descent parser, semantic checker, and a
// lowering pass that produces ir modules (locals become allocas, then
// mem2reg + e-SSA run automatically). It exists so that the examples and
// tests can express the paper's C programs (Fig. 1, Fig. 3) as source text
// and exercise the full compilation path the paper's LLVM implementation
// used.
//
// The language:
//
//	program  := (func | global)*
//	global   := "global" ident "[" int "]" ";"
//	func     := "func" ident "(" (ident type ("," ident type)*)? ")" type? block
//	type     := "int" | "ptr"
//	block    := "{" stmt* "}"
//	stmt     := "var" ident type ("=" expr)? ";"
//	          | ident "=" expr ";"
//	          | "*" unary "=" expr ";"          // store of one unit
//	          | "free" "(" expr ")" ";"
//	          | "if" "(" expr ")" block ("else" block)?
//	          | "while" "(" expr ")" block
//	          | "return" expr? ";"
//	          | expr ";"                        // expression statement (calls)
//	expr     := arith (("<"|"<="|">"|">="|"=="|"!=") arith)?
//	arith    := term  (("+"|"-") term)*
//	term     := unary (("*"|"/"|"%") unary)*
//	unary    := "*" unary | "-" unary | primary  // "*" loads an int
//	primary  := int | ident | call | "(" expr ")" | "null"
//	call     := ident "(" (expr ("," expr)*)? ")"
//
// Builtins: malloc(n) and alloca(n) return ptr; loadp(p) loads a pointer
// from memory. Calls to undeclared functions are externs: they return int
// (their results join the symbolic kernel of the range analysis).
package minic

import "fmt"

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tPunct // ( ) { } , ; [ ]
	tOp    // + - * / % = < <= > >= == !=
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// Error is a positioned frontend error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t token, format string, args ...interface{}) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

// next scans one token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case isSpace(c):
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			goto scan
		}
	}
scan:
	if lx.pos >= len(lx.src) {
		return token{kind: tEOF, line: lx.line, col: lx.col}, nil
	}
	start := token{line: lx.line, col: lx.col}
	c := lx.peekByte()
	switch {
	case isDigit(c):
		s := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
		start.kind = tInt
		start.text = lx.src[s:lx.pos]
		return start, nil
	case isLetter(c):
		s := lx.pos
		for lx.pos < len(lx.src) && (isLetter(lx.peekByte()) || isDigit(lx.peekByte())) {
			lx.advance()
		}
		start.kind = tIdent
		start.text = lx.src[s:lx.pos]
		return start, nil
	}
	switch c {
	case '(', ')', '{', '}', ',', ';', '[', ']':
		lx.advance()
		start.kind = tPunct
		start.text = string(c)
		return start, nil
	case '+', '-', '*', '/', '%':
		lx.advance()
		start.kind = tOp
		start.text = string(c)
		return start, nil
	case '<', '>', '=', '!':
		lx.advance()
		text := string(c)
		if lx.pos < len(lx.src) && lx.peekByte() == '=' {
			lx.advance()
			text += "="
		}
		if text == "!" {
			return start, &Error{Line: start.line, Col: start.col, Msg: "unexpected '!'"}
		}
		start.kind = tOp
		start.text = text
		return start, nil
	}
	return start, &Error{Line: start.line, Col: start.col,
		Msg: fmt.Sprintf("unexpected character %q", string(c))}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}
