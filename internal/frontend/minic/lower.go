package minic

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/ssa"
)

// Compile parses, checks and lowers MiniC source into an analysis-ready IR
// module: locals and mutable parameters become allocas, mem2reg promotes
// them to SSA registers, and the e-SSA π-insertion runs — the exact
// pipeline of Fig. 5's "original program → e-SSA" front half.
func Compile(name, src string) (*ir.Module, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	in, err := Check(prog)
	if err != nil {
		return nil, err
	}
	m := ir.NewModule(name)
	lw := &lowerer{info: in, m: m, irGlobals: map[string]*ir.Global{}}
	for _, g := range prog.Globals {
		lw.irGlobals[g.Name] = m.NewGlobal(g.Name, g.Size)
	}
	// Declare all functions first so calls resolve regardless of order.
	for _, f := range prog.Funcs {
		params := make([]ir.ParamSpec, len(f.Params))
		for i, p := range f.Params {
			params[i] = ir.Param(p.Name, irType(p.Typ))
		}
		m.NewFunc(f.Name, irType(f.Ret), params...)
	}
	for _, f := range prog.Funcs {
		if err := lw.lowerFunc(f); err != nil {
			return nil, err
		}
	}
	for _, f := range m.Funcs {
		ssa.PromoteAllocas(f)
		ssa.InsertPi(f)
		if err := ssa.VerifySSA(f); err != nil {
			return nil, fmt.Errorf("minic: internal error lowering %s: %w", f.Name, err)
		}
	}
	return m, nil
}

func irType(t TypeName) ir.Type {
	switch t {
	case TypeInt:
		return ir.TInt
	case TypePtr:
		return ir.TPtr
	case TypeBool:
		return ir.TBool
	}
	return ir.TVoid
}

type lowerer struct {
	info      *info
	m         *ir.Module
	irGlobals map[string]*ir.Global

	fn     *ir.Func
	b      *ir.Builder
	scopes []map[string]*ir.Value // name → alloca address
	done   bool                   // current block already terminated
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]*ir.Value{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) slot(name string) *ir.Value {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if v, ok := lw.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (lw *lowerer) lowerFunc(decl *FuncDecl) error {
	f := lw.m.Func(decl.Name)
	lw.fn = f
	lw.b = ir.NewBuilder(f)
	lw.done = false
	entry := lw.b.Block("entry")
	lw.b.SetBlock(entry)
	lw.pushScope()
	defer lw.popScope()
	// Parameters are mutable in C; spill each to an alloca (mem2reg undoes
	// this where possible).
	for i, p := range decl.Params {
		addr := lw.b.Alloca(1, p.Name+".addr")
		lw.b.Store(addr, f.Params[i])
		lw.scopes[len(lw.scopes)-1][p.Name] = addr
	}
	lw.block(decl.Body)
	if !lw.done {
		switch decl.Ret {
		case TypeNone:
			lw.b.Ret(nil)
		case TypePtr:
			lw.b.Ret(lw.m.Null())
		default:
			lw.b.Ret(lw.m.IntConst(0))
		}
	}
	return nil
}

func (lw *lowerer) block(b *Block) {
	lw.pushScope()
	defer lw.popScope()
	for _, s := range b.Stmts {
		if lw.done {
			return // unreachable statements after return are dropped
		}
		lw.stmt(s)
	}
}

func (lw *lowerer) stmt(s Stmt) {
	switch st := s.(type) {
	case *VarStmt:
		addr := lw.b.Alloca(1, st.Name+".addr")
		lw.scopes[len(lw.scopes)-1][st.Name] = addr
		if st.Init != nil {
			lw.b.Store(addr, lw.expr(st.Init))
		}
	case *AssignStmt:
		lw.b.Store(lw.slot(st.Name), lw.expr(st.Val))
	case *StoreStmt:
		addr := lw.expr(st.Addr)
		lw.b.Store(addr, lw.expr(st.Val))
	case *FreeStmt:
		p := lw.expr(st.Ptr)
		freed := lw.b.Free(p, "freed")
		// If the operand is a variable, its slot now holds the invalidated
		// copy, so later uses see ⊥ (Fig. 9's free rule).
		if v, ok := st.Ptr.(*VarRef); ok {
			if slot := lw.slot(v.Name); slot != nil {
				lw.b.Store(slot, freed)
			}
		}
	case *IfStmt:
		cond := lw.expr(st.Cond)
		then := lw.b.Block("then")
		var els *ir.Block
		join := lw.b.Block("join")
		if st.Else != nil {
			els = lw.b.Block("else")
			lw.b.CondBr(cond, then, els)
		} else {
			lw.b.CondBr(cond, then, join)
		}
		lw.b.SetBlock(then)
		lw.done = false
		lw.block(st.Then)
		thenDone := lw.done
		if !lw.done {
			lw.b.Br(join)
		}
		elseDone := false
		if els != nil {
			lw.b.SetBlock(els)
			lw.done = false
			lw.block(st.Else)
			elseDone = lw.done
			if !lw.done {
				lw.b.Br(join)
			}
		}
		lw.b.SetBlock(join)
		lw.done = thenDone && (st.Else != nil && elseDone)
		if lw.done {
			// Both arms returned: the join is unreachable; keep it minimal.
			lw.b.Ret(retZero(lw))
			lw.done = true
		} else {
			lw.done = false
		}
	case *WhileStmt:
		head := lw.b.Block("while.head")
		body := lw.b.Block("while.body")
		exit := lw.b.Block("while.exit")
		lw.b.Br(head)
		lw.b.SetBlock(head)
		cond := lw.expr(st.Cond)
		lw.b.CondBr(cond, body, exit)
		lw.b.SetBlock(body)
		lw.done = false
		lw.block(st.Body)
		if !lw.done {
			lw.b.Br(head)
		}
		lw.b.SetBlock(exit)
		lw.done = false
	case *ReturnStmt:
		if st.Val != nil {
			lw.b.Ret(lw.expr(st.Val))
		} else {
			lw.b.Ret(nil)
		}
		lw.done = true
	case *ExprStmt:
		lw.exprAllowVoid(st.X)
	}
}

func retZero(lw *lowerer) *ir.Value {
	switch lw.fn.RetType {
	case ir.TVoid:
		return nil
	case ir.TPtr:
		return lw.m.Null()
	default:
		return lw.m.IntConst(0)
	}
}

func (lw *lowerer) expr(e Expr) *ir.Value {
	v := lw.exprAllowVoid(e)
	if v == nil {
		panic("minic: void value in expression position (sema bug)")
	}
	return v
}

func (lw *lowerer) exprAllowVoid(e Expr) *ir.Value {
	switch x := e.(type) {
	case *IntLit:
		return lw.m.IntConst(x.Val)
	case *NullLit:
		return lw.m.Null()
	case *VarRef:
		if slot := lw.slot(x.Name); slot != nil {
			t := lw.info.typeOf[Expr(x)]
			return lw.b.Load(irType(t), slot, x.Name)
		}
		return lw.irGlobals[x.Name].Addr
	case *NegExpr:
		return lw.b.Sub(lw.m.IntConst(0), lw.expr(x.X), "neg")
	case *LoadExpr:
		t := ir.TInt
		if x.Ptr {
			t = ir.TPtr
		}
		return lw.b.Load(t, lw.expr(x.Addr), "deref")
	case *BinExpr:
		return lw.binExpr(x)
	case *CallExpr:
		args := make([]*ir.Value, len(x.Args))
		for i, a := range x.Args {
			args[i] = lw.expr(a)
		}
		switch x.Name {
		case "malloc":
			return lw.b.Alloc(ir.AllocHeap, args[0], "m")
		case "alloca":
			return lw.b.Alloc(ir.AllocStack, args[0], "a")
		}
		if callee := lw.m.Func(x.Name); callee != nil {
			return lw.b.Call(callee, x.Name+".r", args...)
		}
		return lw.b.Extern(x.Name, ir.TInt, x.Name+".r", args...)
	}
	return nil
}

func (lw *lowerer) binExpr(x *BinExpr) *ir.Value {
	l := lw.expr(x.L)
	r := lw.expr(x.R)
	switch x.Op {
	case "+":
		if l.Typ == ir.TPtr {
			return lw.b.PtrAdd(l, r, "padd")
		}
		if r.Typ == ir.TPtr {
			return lw.b.PtrAdd(r, l, "padd")
		}
		return lw.b.Add(l, r, "add")
	case "-":
		if l.Typ == ir.TPtr {
			neg := lw.b.Sub(lw.m.IntConst(0), r, "neg")
			return lw.b.PtrAdd(l, neg, "psub")
		}
		return lw.b.Sub(l, r, "sub")
	case "*":
		return lw.b.Mul(l, r, "mul")
	case "/":
		return lw.b.Div(l, r, "div")
	case "%":
		return lw.b.Rem(l, r, "rem")
	}
	pred := map[string]ir.Pred{
		"<": ir.PLt, "<=": ir.PLe, ">": ir.PGt, ">=": ir.PGe,
		"==": ir.PEq, "!=": ir.PNe,
	}[x.Op]
	return lw.b.Cmp(pred, l, r, "cmp")
}
