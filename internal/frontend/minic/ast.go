package minic

// The AST mirrors the grammar in the package comment. Every node carries
// the token that introduced it for error positions.

// Program is a parsed source file.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl is `global name[size];`.
type GlobalDecl struct {
	Name string
	Size int64
	tok  token
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []ParamDecl
	Ret    TypeName // TypeNone for void
	Body   *Block
	tok    token
}

// ParamDecl is one formal parameter.
type ParamDecl struct {
	Name string
	Typ  TypeName
	tok  token
}

// TypeName is a surface type.
type TypeName uint8

// Surface types.
const (
	TypeNone TypeName = iota // void / statement context
	TypeInt
	TypePtr
	TypeBool // comparisons; only valid in conditions
)

func (t TypeName) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypePtr:
		return "ptr"
	case TypeBool:
		return "bool"
	}
	return "void"
}

// Block is a statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// VarStmt is `var x type (= init)?;`.
type VarStmt struct {
	Name string
	Typ  TypeName
	Init Expr // may be nil
	tok  token
}

// AssignStmt is `x = e;`.
type AssignStmt struct {
	Name string
	Val  Expr
	tok  token
}

// StoreStmt is `*addr = e;`.
type StoreStmt struct {
	Addr Expr
	Val  Expr
	tok  token
}

// FreeStmt is `free(e);`.
type FreeStmt struct {
	Ptr Expr
	tok token
}

// IfStmt is `if (cond) { … } else { … }`.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	tok  token
}

// WhileStmt is `while (cond) { … }`.
type WhileStmt struct {
	Cond Expr
	Body *Block
	tok  token
}

// ReturnStmt is `return e?;`.
type ReturnStmt struct {
	Val Expr // may be nil
	tok token
}

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	X   Expr
	tok token
}

func (*VarStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*StoreStmt) stmtNode()  {}
func (*FreeStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

// Expr is implemented by all expression nodes.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	tok token
}

// NullLit is the null pointer literal.
type NullLit struct{ tok token }

// VarRef references a local or parameter (or a global's address).
type VarRef struct {
	Name string
	tok  token
}

// BinExpr is arithmetic or comparison.
type BinExpr struct {
	Op   string // + - * / % < <= > >= == !=
	L, R Expr
	tok  token
}

// NegExpr is unary minus.
type NegExpr struct {
	X   Expr
	tok token
}

// LoadExpr is `*p` (loads an int) or loadp(p) (loads a ptr).
type LoadExpr struct {
	Addr Expr
	Ptr  bool // true for loadp
	tok  token
}

// CallExpr calls a declared function, a builtin (malloc/alloca), or an
// extern (any other name).
type CallExpr struct {
	Name string
	Args []Expr
	tok  token
}

func (*IntLit) exprNode()   {}
func (*NullLit) exprNode()  {}
func (*VarRef) exprNode()   {}
func (*BinExpr) exprNode()  {}
func (*NegExpr) exprNode()  {}
func (*LoadExpr) exprNode() {}
func (*CallExpr) exprNode() {}
