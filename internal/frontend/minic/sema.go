package minic

// Semantic analysis: name resolution and type checking. Types annotate the
// tree implicitly — Check records the type of every expression node in the
// returned info table, which lowering consults.

type funcSig struct {
	params []TypeName
	ret    TypeName
}

type info struct {
	sigs    map[string]funcSig
	globals map[string]*GlobalDecl
	typeOf  map[Expr]TypeName
}

// Check validates a program and returns the type information lowering needs.
func Check(prog *Program) (*info, error) {
	in := &info{
		sigs:    map[string]funcSig{},
		globals: map[string]*GlobalDecl{},
		typeOf:  map[Expr]TypeName{},
	}
	for _, g := range prog.Globals {
		if _, dup := in.globals[g.Name]; dup {
			return nil, errAt(g.tok, "duplicate global %q", g.Name)
		}
		if g.Size <= 0 {
			return nil, errAt(g.tok, "global %q must have positive size", g.Name)
		}
		in.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if _, dup := in.sigs[f.Name]; dup {
			return nil, errAt(f.tok, "duplicate function %q", f.Name)
		}
		if _, clash := in.globals[f.Name]; clash {
			return nil, errAt(f.tok, "function %q collides with a global", f.Name)
		}
		sig := funcSig{ret: f.Ret}
		for _, p := range f.Params {
			sig.params = append(sig.params, p.Typ)
		}
		in.sigs[f.Name] = sig
	}
	for _, f := range prog.Funcs {
		c := &checker{info: in, fn: f}
		c.pushScope()
		for _, p := range f.Params {
			if err := c.declare(p.Name, p.Typ, p.tok); err != nil {
				return nil, err
			}
		}
		if err := c.block(f.Body); err != nil {
			return nil, err
		}
	}
	return in, nil
}

type checker struct {
	info   *info
	fn     *FuncDecl
	scopes []map[string]TypeName
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]TypeName{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t TypeName, tok token) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errAt(tok, "duplicate declaration of %q", name)
	}
	top[name] = t
	return nil
}

func (c *checker) lookup(name string) (TypeName, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	if _, ok := c.info.globals[name]; ok {
		return TypePtr, true
	}
	return TypeNone, false
}

func (c *checker) block(b *Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *VarStmt:
		if st.Typ != TypeInt && st.Typ != TypePtr {
			return errAt(st.tok, "variables must be int or ptr")
		}
		if st.Init != nil {
			t, err := c.expr(st.Init)
			if err != nil {
				return err
			}
			if t != st.Typ {
				return errAt(st.tok, "cannot initialize %s variable %q with %s", st.Typ, st.Name, t)
			}
		}
		return c.declare(st.Name, st.Typ, st.tok)
	case *AssignStmt:
		want, ok := c.lookup(st.Name)
		if !ok {
			return errAt(st.tok, "assignment to undeclared %q", st.Name)
		}
		if _, isGlobal := c.info.globals[st.Name]; isGlobal {
			return errAt(st.tok, "cannot assign to global %q (store through it instead)", st.Name)
		}
		got, err := c.expr(st.Val)
		if err != nil {
			return err
		}
		if got != want {
			return errAt(st.tok, "cannot assign %s to %s variable %q", got, want, st.Name)
		}
		return nil
	case *StoreStmt:
		at, err := c.expr(st.Addr)
		if err != nil {
			return err
		}
		if at != TypePtr {
			return errAt(st.tok, "store address must be ptr, got %s", at)
		}
		vt, err := c.expr(st.Val)
		if err != nil {
			return err
		}
		if vt != TypeInt && vt != TypePtr {
			return errAt(st.tok, "cannot store a %s value", vt)
		}
		return nil
	case *FreeStmt:
		t, err := c.expr(st.Ptr)
		if err != nil {
			return err
		}
		if t != TypePtr {
			return errAt(st.tok, "free takes a ptr, got %s", t)
		}
		return nil
	case *IfStmt:
		if err := c.cond(st.Cond, st.tok); err != nil {
			return err
		}
		if err := c.block(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.block(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.cond(st.Cond, st.tok); err != nil {
			return err
		}
		return c.block(st.Body)
	case *ReturnStmt:
		if c.fn.Ret == TypeNone {
			if st.Val != nil {
				return errAt(st.tok, "void function %q returns a value", c.fn.Name)
			}
			return nil
		}
		if st.Val == nil {
			return errAt(st.tok, "function %q must return a %s", c.fn.Name, c.fn.Ret)
		}
		t, err := c.expr(st.Val)
		if err != nil {
			return err
		}
		if t != c.fn.Ret {
			return errAt(st.tok, "function %q returns %s, got %s", c.fn.Name, c.fn.Ret, t)
		}
		return nil
	case *ExprStmt:
		_, err := c.exprAllowVoid(st.X)
		return err
	}
	return nil
}

func (c *checker) cond(e Expr, tok token) error {
	t, err := c.expr(e)
	if err != nil {
		return err
	}
	if t != TypeBool {
		return errAt(tok, "condition must be a comparison, got %s", t)
	}
	return nil
}

func (c *checker) expr(e Expr) (TypeName, error) {
	t, err := c.exprAllowVoid(e)
	if err != nil {
		return t, err
	}
	if t == TypeNone {
		return t, errAt(tokOf(e), "void value used in expression")
	}
	return t, nil
}

func tokOf(e Expr) token {
	switch x := e.(type) {
	case *IntLit:
		return x.tok
	case *NullLit:
		return x.tok
	case *VarRef:
		return x.tok
	case *BinExpr:
		return x.tok
	case *NegExpr:
		return x.tok
	case *LoadExpr:
		return x.tok
	case *CallExpr:
		return x.tok
	}
	return token{}
}

func (c *checker) exprAllowVoid(e Expr) (TypeName, error) {
	t, err := c.typeExpr(e)
	if err != nil {
		return t, err
	}
	c.info.typeOf[e] = t
	return t, nil
}

func (c *checker) typeExpr(e Expr) (TypeName, error) {
	switch x := e.(type) {
	case *IntLit:
		return TypeInt, nil
	case *NullLit:
		return TypePtr, nil
	case *VarRef:
		t, ok := c.lookup(x.Name)
		if !ok {
			return TypeNone, errAt(x.tok, "undeclared identifier %q", x.Name)
		}
		return t, nil
	case *NegExpr:
		t, err := c.expr(x.X)
		if err != nil {
			return TypeNone, err
		}
		if t != TypeInt {
			return TypeNone, errAt(x.tok, "unary minus needs an int, got %s", t)
		}
		return TypeInt, nil
	case *LoadExpr:
		t, err := c.expr(x.Addr)
		if err != nil {
			return TypeNone, err
		}
		if t != TypePtr {
			return TypeNone, errAt(x.tok, "dereference of non-pointer %s", t)
		}
		if x.Ptr {
			return TypePtr, nil
		}
		return TypeInt, nil
	case *BinExpr:
		lt, err := c.expr(x.L)
		if err != nil {
			return TypeNone, err
		}
		rt, err := c.expr(x.R)
		if err != nil {
			return TypeNone, err
		}
		switch x.Op {
		case "+":
			switch {
			case lt == TypeInt && rt == TypeInt:
				return TypeInt, nil
			case lt == TypePtr && rt == TypeInt, lt == TypeInt && rt == TypePtr:
				return TypePtr, nil
			}
			return TypeNone, errAt(x.tok, "invalid operands to +: %s and %s", lt, rt)
		case "-":
			switch {
			case lt == TypeInt && rt == TypeInt:
				return TypeInt, nil
			case lt == TypePtr && rt == TypeInt:
				return TypePtr, nil
			}
			return TypeNone, errAt(x.tok, "invalid operands to -: %s and %s", lt, rt)
		case "*", "/", "%":
			if lt != TypeInt || rt != TypeInt {
				return TypeNone, errAt(x.tok, "%s needs ints, got %s and %s", x.Op, lt, rt)
			}
			return TypeInt, nil
		default: // comparisons
			if lt != rt || (lt != TypeInt && lt != TypePtr) {
				return TypeNone, errAt(x.tok, "cannot compare %s with %s", lt, rt)
			}
			return TypeBool, nil
		}
	case *CallExpr:
		switch x.Name {
		case "malloc", "alloca":
			if len(x.Args) != 1 {
				return TypeNone, errAt(x.tok, "%s takes one argument", x.Name)
			}
			t, err := c.expr(x.Args[0])
			if err != nil {
				return TypeNone, err
			}
			if t != TypeInt {
				return TypeNone, errAt(x.tok, "%s size must be int", x.Name)
			}
			return TypePtr, nil
		}
		if sig, ok := c.info.sigs[x.Name]; ok {
			if len(x.Args) != len(sig.params) {
				return TypeNone, errAt(x.tok, "%q takes %d arguments, got %d",
					x.Name, len(sig.params), len(x.Args))
			}
			for i, a := range x.Args {
				t, err := c.expr(a)
				if err != nil {
					return TypeNone, err
				}
				if t != sig.params[i] {
					return TypeNone, errAt(x.tok, "argument %d of %q: want %s, got %s",
						i+1, x.Name, sig.params[i], t)
				}
			}
			return sig.ret, nil
		}
		// Extern: arguments of any non-void type; result int.
		for _, a := range x.Args {
			if _, err := c.expr(a); err != nil {
				return TypeNone, err
			}
		}
		return TypeInt, nil
	}
	return TypeNone, nil
}
