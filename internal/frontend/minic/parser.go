package minic

import "strconv"

type parser struct {
	toks []token
	pos  int
}

// Parse parses a MiniC source file.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tEOF, "") {
		switch {
		case p.at(tIdent, "global"):
			g, err := p.global()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.at(tIdent, "func"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errAt(p.cur(), "expected 'func' or 'global', got %q", p.cur().text)
		}
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokKind]string{tIdent: "identifier", tInt: "integer"}[kind]
		}
		return p.cur(), errAt(p.cur(), "expected %q, got %q", want, p.cur().text)
	}
	t := p.cur()
	p.pos++
	return t, nil
}

func (p *parser) global() (*GlobalDecl, error) {
	tok, _ := p.eat(tIdent, "global")
	name, err := p.eat(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tPunct, "["); err != nil {
		return nil, err
	}
	size, err := p.eat(tInt, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tPunct, "]"); err != nil {
		return nil, err
	}
	if _, err := p.eat(tPunct, ";"); err != nil {
		return nil, err
	}
	n, _ := strconv.ParseInt(size.text, 10, 64)
	return &GlobalDecl{Name: name.text, Size: n, tok: tok}, nil
}

func (p *parser) typeName() (TypeName, error) {
	t, err := p.eat(tIdent, "")
	if err != nil {
		return TypeNone, err
	}
	switch t.text {
	case "int":
		return TypeInt, nil
	case "ptr":
		return TypePtr, nil
	}
	return TypeNone, errAt(t, "unknown type %q", t.text)
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	tok, _ := p.eat(tIdent, "func")
	name, err := p.eat(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tPunct, "("); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.text, tok: tok}
	for !p.at(tPunct, ")") {
		if len(f.Params) > 0 {
			if _, err := p.eat(tPunct, ","); err != nil {
				return nil, err
			}
		}
		pn, err := p.eat(tIdent, "")
		if err != nil {
			return nil, err
		}
		pt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, ParamDecl{Name: pn.text, Typ: pt, tok: pn})
	}
	p.pos++ // ')'
	if p.at(tIdent, "int") || p.at(tIdent, "ptr") {
		rt, _ := p.typeName()
		f.Ret = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.eat(tPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.at(tPunct, "}") {
		if p.at(tEOF, "") {
			return nil, errAt(p.cur(), "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tIdent, "var"):
		p.pos++
		name, err := p.eat(tIdent, "")
		if err != nil {
			return nil, err
		}
		typ, err := p.typeName()
		if err != nil {
			return nil, err
		}
		s := &VarStmt{Name: name.text, Typ: typ, tok: t}
		if p.at(tOp, "=") {
			p.pos++
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
		if _, err := p.eat(tPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil

	case p.at(tIdent, "if"):
		p.pos++
		if _, err := p.eat(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then, tok: t}
		if p.at(tIdent, "else") {
			p.pos++
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
		return s, nil

	case p.at(tIdent, "while"):
		p.pos++
		if _, err := p.eat(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, tok: t}, nil

	case p.at(tIdent, "return"):
		p.pos++
		s := &ReturnStmt{tok: t}
		if !p.at(tPunct, ";") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Val = v
		}
		if _, err := p.eat(tPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil

	case p.at(tIdent, "free"):
		p.pos++
		if _, err := p.eat(tPunct, "("); err != nil {
			return nil, err
		}
		ptr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.eat(tPunct, ";"); err != nil {
			return nil, err
		}
		return &FreeStmt{Ptr: ptr, tok: t}, nil

	case p.at(tOp, "*"):
		p.pos++
		addr, err := p.unary()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tOp, "="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tPunct, ";"); err != nil {
			return nil, err
		}
		return &StoreStmt{Addr: addr, Val: val, tok: t}, nil

	case t.kind == tIdent && p.toks[p.pos+1].kind == tOp && p.toks[p.pos+1].text == "=":
		p.pos += 2
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tPunct, ";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: t.text, Val: val, tok: t}, nil

	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, tok: t}, nil
	}
}

func (p *parser) expr() (Expr, error) {
	l, err := p.arith()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tOp {
		switch t.text {
		case "<", "<=", ">", ">=", "==", "!=":
			p.pos++
			r, err := p.arith()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: t.text, L: l, R: r, tok: t}, nil
		}
	}
	return l, nil
}

func (p *parser) arith() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.at(tOp, "+") || p.at(tOp, "-") {
		t := p.cur()
		p.pos++
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.text, L: l, R: r, tok: t}
	}
	return l, nil
}

func (p *parser) term() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tOp, "*") || p.at(tOp, "/") || p.at(tOp, "%") {
		t := p.cur()
		p.pos++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.text, L: l, R: r, tok: t}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch {
	case p.at(tOp, "*"):
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &LoadExpr{Addr: x, tok: t}, nil
	case p.at(tOp, "-"):
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &NegExpr{X: x, tok: t}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tInt:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errAt(t, "bad integer %q", t.text)
		}
		return &IntLit{Val: v, tok: t}, nil
	case p.at(tIdent, "null"):
		p.pos++
		return &NullLit{tok: t}, nil
	case p.at(tPunct, "("):
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tIdent:
		p.pos++
		if !p.at(tPunct, "(") {
			return &VarRef{Name: t.text, tok: t}, nil
		}
		p.pos++ // '('
		call := &CallExpr{Name: t.text, tok: t}
		for !p.at(tPunct, ")") {
			if len(call.Args) > 0 {
				if _, err := p.eat(tPunct, ","); err != nil {
					return nil, err
				}
			}
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
		}
		p.pos++ // ')'
		if call.Name == "loadp" {
			if len(call.Args) != 1 {
				return nil, errAt(t, "loadp takes one argument")
			}
			return &LoadExpr{Addr: call.Args[0], Ptr: true, tok: t}, nil
		}
		return call, nil
	}
	return nil, errAt(t, "unexpected token %q", t.text)
}
