package repro

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/benchgen"
	"repro/internal/pointer"
)

// Analysis-core benchmarks backing BENCH_analysis.json: end-to-end Manager
// query cost (the service's per-query hot path) and module-build cost (the
// service's upload/eviction-rebuild path), both with allocation accounting.

// managerBench builds the scev→basic→rbaa chain over the espresso module
// with memoization off, so every Evaluate measures member analysis work.
func managerBench(b *testing.B) (*alias.Manager, []alias.Pair) {
	b.Helper()
	m := benchgen.Generate(benchgen.Fig13Configs()[1])
	mgr := alias.NewManager(
		alias.ManagerOptions{Label: "scev+basic+rbaa", CacheLimit: -1},
		scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{}))
	return mgr, alias.Queries(m)
}

func BenchmarkManagerQuery(b *testing.B) {
	mgr, qs := managerBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		mgr.Evaluate(q.P, q.Q)
	}
}

func BenchmarkModuleBuild(b *testing.B) {
	m := benchgen.Generate(benchgen.Fig13Configs()[1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rbaa.New(m, pointer.Options{})
		if a == nil {
			b.Fatal("nil analysis")
		}
	}
}
