// Command promlint validates a Prometheus text exposition read from stdin,
// the way `promtool check metrics` does for the subset aliasd emits:
// name/label grammar, family membership, duplicate samples, counter
// non-negativity, and histogram coherence (ascending cumulative buckets, a
// +Inf terminator matching _count, a _sum sample). CI pipes the live
// /metrics body through it so format drift fails the build without adding a
// promtool dependency.
//
//	curl -s http://localhost:8417/metrics | promlint
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

func main() {
	b, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: reading stdin: %v\n", err)
		os.Exit(2)
	}
	if err := telemetry.Lint(string(b)); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
	fams, _ := telemetry.Parse(string(b))
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Printf("promlint: ok (%d families, %d samples)\n", len(fams), samples)
}
