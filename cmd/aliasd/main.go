// Command aliasd serves batched alias queries over HTTP/JSON — the daemon
// face of internal/service.
//
//	aliasd                             # listen on 127.0.0.1:8417
//	aliasd -addr 127.0.0.1:0 -portfile addr.txt   # random port, written to a file
//	aliasd -parallel 8 -max-batch 8192 # bigger query worker pool and batches
//	aliasd -cache-limit 4096 -evict-modules -build-workers 4
//	                                   # small bounded LRU memo per module,
//	                                   # idle-LRU registry eviction, async builds
//	aliasd -mem-budget 512MB -max-inflight 64 -query-timeout 2s
//	                                   # watermark-governed degradation,
//	                                   # bounded admission, per-batch deadline
//	aliasd -chaos build-delay=50ms,alloc-spike=16MB,slow-client=5ms
//	                                   # synthetic faults for robustness drills
//	aliasd -data-dir /var/lib/aliasd -reuse-cache 64MB
//	                                   # crash-safe module store, replayed on
//	                                   # boot; cross-module index reuse
//	aliasd -debug-addr 127.0.0.1:8418 -log-level debug
//	                                   # pprof/expvar sidecar + per-request logs
//
// A session:
//
//	curl -X POST --data-binary @prog.mc "http://localhost:8417/v1/modules?name=prog&format=minic"
//	curl -X POST -d '{"module":"prog","pairs":[{"func":"main","a":"p","b":"q"}]}' http://localhost:8417/v1/query
//	curl http://localhost:8417/metrics
//	curl http://localhost:8417/v1/stats
//
// The production listener serves the API plus /healthz, /readyz and
// /metrics. Profiling endpoints (net/http/pprof, expvar) are deliberately
// NOT on that mux: they expose internals and can stall the process, so they
// bind only to the separate -debug-addr listener, which defaults to off.
//
// Shutdown is graceful: SIGINT/SIGTERM flips /readyz to draining (load
// balancers stop routing), new work is shed with structured 503s, in-flight
// batches finish within -drain-timeout, then the HTTP server closes idle
// connections and the process exits 0. A second signal aborts immediately.
//
// See the package documentation of internal/service for the full API.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// parseBytes reads a byte count with an optional KB/MB/GB (or K/M/G) suffix:
// "512MB", "64M", "1073741824".
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(t, suf.name) {
			t = strings.TrimSuffix(t, suf.name)
			mult = suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

// chaosInjector is the -chaos flag's service.Injector: fixed fault
// magnitudes parsed once at startup, applied at every seam they name.
type chaosInjector struct {
	buildDelay time.Duration // sleep at the top of every module build
	allocSpike int64         // transient garbage allocated per query batch
	slowClient time.Duration // stall before writing each success response

	// crashAfterWrite hard-exits the process after the Nth completed store
	// write step (0 = disabled). os.Exit skips every deferred flush — the
	// in-process stand-in for kill -9 mid-persist that the crash-recovery
	// drills lean on.
	crashAfterWrite int64
	storeWrites     atomic.Int64
}

// chaosSink keeps the allocated spike reachable long enough that the
// compiler cannot elide the allocation; it is overwritten per batch so the
// garbage is transient — exactly the pressure pattern the budget governor
// must absorb.
var chaosSink []byte

func (c *chaosInjector) BuildStart(string) {
	if c.buildDelay > 0 {
		time.Sleep(c.buildDelay)
	}
}

func (c *chaosInjector) QueryStart(string, int) {
	if c.allocSpike > 0 {
		b := make([]byte, c.allocSpike)
		for i := 0; i < len(b); i += 4096 {
			b[i] = 1 // touch every page: real RSS, not lazy mappings
		}
		chaosSink = b
	}
}

func (c *chaosInjector) ResponseWrite() {
	if c.slowClient > 0 {
		time.Sleep(c.slowClient)
	}
}

func (c *chaosInjector) StoreWrite(step string) {
	if c.crashAfterWrite <= 0 {
		return
	}
	if n := c.storeWrites.Add(1); n == c.crashAfterWrite {
		fmt.Fprintf(os.Stderr, "aliasd: chaos crash-after-write: hard exit after store step %d (%s)\n", n, step)
		os.Exit(3)
	}
}

// parseChaos reads the -chaos spec: comma-separated key=value pairs from
// build-delay=<dur>, alloc-spike=<bytes>, slow-client=<dur>,
// crash-after-write=<n>. Empty spec = no injector (the production nil
// path).
func parseChaos(spec string) (service.Injector, error) {
	if spec == "" {
		return nil, nil
	}
	inj := &chaosInjector{}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -chaos entry %q (want key=value)", part)
		}
		switch key {
		case "build-delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("bad -chaos build-delay: %v", err)
			}
			inj.buildDelay = d
		case "alloc-spike":
			n, err := parseBytes(val)
			if err != nil {
				return nil, fmt.Errorf("bad -chaos alloc-spike: %v", err)
			}
			inj.allocSpike = n
		case "slow-client":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("bad -chaos slow-client: %v", err)
			}
			inj.slowClient = d
		case "crash-after-write":
			n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -chaos crash-after-write %q (want positive integer)", val)
			}
			inj.crashAfterWrite = n
		default:
			return nil, fmt.Errorf("unknown -chaos key %q", key)
		}
	}
	return inj, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8417", "listen address (use port 0 for a random port)")
	portfile := flag.String("portfile", "", "write the bound address to this file once listening (for scripted callers)")
	debugAddr := flag.String("debug-addr", "", "separate listener for pprof and expvar (empty = disabled; never exposed on -addr)")
	debugPortfile := flag.String("debug-portfile", "", "write the bound debug address to this file (requires -debug-addr)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug includes per-request stage breakdowns)")
	parallel := flag.Int("parallel", -1, "query-stage worker pool size (-1 = GOMAXPROCS, 0/1 = sequential)")
	maxBatch := flag.Int("max-batch", service.DefaultMaxBatch, "maximum pairs per /v1/query request")
	maxBatchBytes := flag.String("max-batch-bytes", "", "maximum /v1/query request body size, e.g. 4MB (empty = 16MB default)")
	maxSource := flag.Int("max-source-bytes", service.DefaultMaxSourceBytes, "maximum module source size accepted by /v1/modules")
	maxModules := flag.Int("max-modules", service.DefaultMaxModules, "maximum registered modules")
	cacheLimit := flag.Int("cache-limit", 0, "per-module verdict memo cache entries (0 = default 1M, negative disables caching)")
	evictModules := flag.Bool("evict-modules", false, "evict the least-recently-queried module when the registry is full instead of refusing the upload")
	buildWorkers := flag.Int("build-workers", service.DefaultBuildWorkers, "async module-build workers (POST /v1/modules?async=1)")
	planner := flag.Bool("planner", true, "compile per-module alias indexes and answer batches through the sweep-line planner (false = legacy per-pair chain walks)")
	memBudget := flag.String("mem-budget", "", "approximate process memory budget, e.g. 512MB; past 70% the daemon degrades caches, past 85% it sheds work (empty = unlimited)")
	maxInFlight := flag.Int("max-inflight", service.DefaultMaxInFlight, "maximum concurrently admitted /v1/query batches; excess is shed with 503 (negative = unbounded)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-batch evaluation deadline; exceeded batches are cancelled mid-flight and shed with 503 (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight batches after SIGTERM before the server is forced down")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout (slow-request defense)")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "HTTP server write timeout (slow-client defense)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP server keep-alive idle timeout")
	chaosSpec := flag.String("chaos", "", "fault injection: comma-separated build-delay=<dur>, alloc-spike=<bytes>, slow-client=<dur>, crash-after-write=<n> (empty = off)")
	dataDir := flag.String("data-dir", "", "crash-safe on-disk module store; modules persist across restarts and are replayed on boot (empty = in-memory only)")
	reuseCache := flag.String("reuse-cache", "", "cross-module function-index reuse cache size, e.g. 64MB (empty = 32MB default, 0 disables)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "aliasd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var budgetBytes int64
	if *memBudget != "" {
		n, err := parseBytes(*memBudget)
		if err != nil {
			logger.Error("bad -mem-budget", "error", err)
			os.Exit(1)
		}
		budgetBytes = n
	}
	var batchBytes int64
	if *maxBatchBytes != "" {
		n, err := parseBytes(*maxBatchBytes)
		if err != nil {
			logger.Error("bad -max-batch-bytes", "error", err)
			os.Exit(1)
		}
		batchBytes = n
	}
	chaos, err := parseChaos(*chaosSpec)
	if err != nil {
		logger.Error("bad -chaos", "error", err)
		os.Exit(1)
	}
	if chaos != nil {
		logger.Warn("chaos injection enabled", "spec", *chaosSpec)
	}

	var reuseBytes int64
	if *reuseCache != "" {
		n, err := parseBytes(*reuseCache)
		if err != nil {
			logger.Error("bad -reuse-cache", "error", err)
			os.Exit(1)
		}
		if n <= 0 {
			reuseBytes = -1 // Config: negative disables, zero means default
		} else {
			reuseBytes = n
		}
	}

	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir)
		if err != nil {
			logger.Error("opening data dir failed", "dir", *dataDir, "error", err)
			os.Exit(1)
		}
		logger.Info("module store open", "dir", *dataDir,
			"records", st.Len(), "bytes", st.SizeBytes())
	}

	svc := service.New(service.Config{
		MaxBatch:        *maxBatch,
		MaxBatchBytes:   batchBytes,
		MaxSourceBytes:  *maxSource,
		MaxModules:      *maxModules,
		Parallel:        *parallel,
		CacheLimit:      *cacheLimit,
		EvictModules:    *evictModules,
		BuildWorkers:    *buildWorkers,
		DisablePlanner:  !*planner,
		MemBudget:       budgetBytes,
		MaxInFlight:     *maxInFlight,
		QueryTimeout:    *queryTimeout,
		Chaos:           chaos,
		Logger:          logger,
		Store:           st,
		ReuseCacheBytes: reuseBytes,
	})
	defer svc.Close()

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", "addr", *debugAddr, "error", err)
			os.Exit(1)
		}
		if *debugPortfile != "" {
			if err := os.WriteFile(*debugPortfile, []byte(dln.Addr().String()+"\n"), 0o644); err != nil {
				logger.Error("writing debug portfile failed", "error", err)
				os.Exit(1)
			}
		}
		// A dedicated mux: pprof's init() registers on http.DefaultServeMux,
		// which we never serve, so the explicit routes below are the only
		// way in — and only via this listener.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		logger.Info("debug listener up", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				logger.Error("debug serve failed", "error", err)
			}
		}()
	} else if *debugPortfile != "" {
		logger.Error("-debug-portfile requires -debug-addr")
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Error("writing portfile failed", "error", err)
			os.Exit(1)
		}
	}
	fmt.Printf("aliasd: listening on %s\n", bound)
	logger.Info("listening", "addr", bound, "parallel", *parallel, "planner", *planner,
		"mem_budget", budgetBytes, "max_inflight", *maxInFlight)

	srv := &http.Server{
		Handler:      svc.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Replay the store after the listener is up: probes see a structured
	// "recovering" /readyz instead of connection refused, and queries shed
	// with a retryable reason until the registry is whole again.
	if err := svc.Recover(); err != nil {
		logger.Error("store recovery failed", "error", err)
		os.Exit(1)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		// Graceful sequence: stop admitting (readyz goes draining, so load
		// balancers route away), let in-flight batches finish under the
		// drain deadline, then close the listener and idle connections.
		logger.Info("signal received: draining", "signal", sig.String(),
			"in_flight", svc.InFlight(), "drain_timeout", *drainTimeout)
		svc.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		go func() {
			// A second signal skips the grace period.
			<-sigs
			logger.Warn("second signal: aborting drain")
			cancel()
		}()
		if err := svc.Drain(ctx); err != nil {
			logger.Warn("drain incomplete, shutting down anyway", "error", err)
		} else {
			logger.Info("drain complete")
		}
		if err := svc.FlushStore(); err != nil {
			logger.Warn("store flush failed", "error", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("http shutdown incomplete", "error", err)
			srv.Close()
		}
		cancel()
		logger.Info("shutdown complete")
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	}
}
