// Command aliasd serves batched alias queries over HTTP/JSON — the daemon
// face of internal/service.
//
//	aliasd                             # listen on 127.0.0.1:8417
//	aliasd -addr 127.0.0.1:0 -portfile addr.txt   # random port, written to a file
//	aliasd -parallel 8 -max-batch 8192 # bigger query worker pool and batches
//	aliasd -cache-limit 4096 -evict-modules -build-workers 4
//	                                   # small bounded LRU memo per module,
//	                                   # idle-LRU registry eviction, async builds
//	aliasd -debug-addr 127.0.0.1:8418 -log-level debug
//	                                   # pprof/expvar sidecar + per-request logs
//
// A session:
//
//	curl -X POST --data-binary @prog.mc "http://localhost:8417/v1/modules?name=prog&format=minic"
//	curl -X POST -d '{"module":"prog","pairs":[{"func":"main","a":"p","b":"q"}]}' http://localhost:8417/v1/query
//	curl http://localhost:8417/metrics
//	curl http://localhost:8417/v1/stats
//
// The production listener serves the API plus /healthz, /readyz and
// /metrics. Profiling endpoints (net/http/pprof, expvar) are deliberately
// NOT on that mux: they expose internals and can stall the process, so they
// bind only to the separate -debug-addr listener, which defaults to off.
//
// See the package documentation of internal/service for the full API.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8417", "listen address (use port 0 for a random port)")
	portfile := flag.String("portfile", "", "write the bound address to this file once listening (for scripted callers)")
	debugAddr := flag.String("debug-addr", "", "separate listener for pprof and expvar (empty = disabled; never exposed on -addr)")
	debugPortfile := flag.String("debug-portfile", "", "write the bound debug address to this file (requires -debug-addr)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug includes per-request stage breakdowns)")
	parallel := flag.Int("parallel", -1, "query-stage worker pool size (-1 = GOMAXPROCS, 0/1 = sequential)")
	maxBatch := flag.Int("max-batch", service.DefaultMaxBatch, "maximum pairs per /v1/query request")
	maxSource := flag.Int("max-source-bytes", service.DefaultMaxSourceBytes, "maximum module source size accepted by /v1/modules")
	maxModules := flag.Int("max-modules", service.DefaultMaxModules, "maximum registered modules")
	cacheLimit := flag.Int("cache-limit", 0, "per-module verdict memo cache entries (0 = default 1M, negative disables caching)")
	evictModules := flag.Bool("evict-modules", false, "evict the least-recently-queried module when the registry is full instead of refusing the upload")
	buildWorkers := flag.Int("build-workers", service.DefaultBuildWorkers, "async module-build workers (POST /v1/modules?async=1)")
	planner := flag.Bool("planner", true, "compile per-module alias indexes and answer batches through the sweep-line planner (false = legacy per-pair chain walks)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "aliasd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	svc := service.New(service.Config{
		MaxBatch:       *maxBatch,
		MaxSourceBytes: *maxSource,
		MaxModules:     *maxModules,
		Parallel:       *parallel,
		CacheLimit:     *cacheLimit,
		EvictModules:   *evictModules,
		BuildWorkers:   *buildWorkers,
		DisablePlanner: !*planner,
		Logger:         logger,
	})
	defer svc.Close()

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", "addr", *debugAddr, "error", err)
			os.Exit(1)
		}
		if *debugPortfile != "" {
			if err := os.WriteFile(*debugPortfile, []byte(dln.Addr().String()+"\n"), 0o644); err != nil {
				logger.Error("writing debug portfile failed", "error", err)
				os.Exit(1)
			}
		}
		// A dedicated mux: pprof's init() registers on http.DefaultServeMux,
		// which we never serve, so the explicit routes below are the only
		// way in — and only via this listener.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		logger.Info("debug listener up", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				logger.Error("debug serve failed", "error", err)
			}
		}()
	} else if *debugPortfile != "" {
		logger.Error("-debug-portfile requires -debug-addr")
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Error("writing portfile failed", "error", err)
			os.Exit(1)
		}
	}
	fmt.Printf("aliasd: listening on %s\n", bound)
	logger.Info("listening", "addr", bound, "parallel", *parallel, "planner", *planner)
	if err := http.Serve(ln, svc.Handler()); err != nil {
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	}
}
