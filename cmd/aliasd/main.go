// Command aliasd serves batched alias queries over HTTP/JSON — the daemon
// face of internal/service.
//
//	aliasd                             # listen on 127.0.0.1:8417
//	aliasd -addr 127.0.0.1:0 -portfile addr.txt   # random port, written to a file
//	aliasd -parallel 8 -max-batch 8192 # bigger query worker pool and batches
//	aliasd -cache-limit 4096 -evict-modules -build-workers 4
//	                                   # small bounded LRU memo per module,
//	                                   # idle-LRU registry eviction, async builds
//
// A session:
//
//	curl -X POST --data-binary @prog.mc "http://localhost:8417/v1/modules?name=prog&format=minic"
//	curl -X POST -d '{"module":"prog","pairs":[{"func":"main","a":"p","b":"q"}]}' http://localhost:8417/v1/query
//	curl http://localhost:8417/v1/stats
//
// See the package documentation of internal/service for the full API.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8417", "listen address (use port 0 for a random port)")
	portfile := flag.String("portfile", "", "write the bound address to this file once listening (for scripted callers)")
	parallel := flag.Int("parallel", -1, "query-stage worker pool size (-1 = GOMAXPROCS, 0/1 = sequential)")
	maxBatch := flag.Int("max-batch", service.DefaultMaxBatch, "maximum pairs per /v1/query request")
	maxSource := flag.Int("max-source-bytes", service.DefaultMaxSourceBytes, "maximum module source size accepted by /v1/modules")
	maxModules := flag.Int("max-modules", service.DefaultMaxModules, "maximum registered modules")
	cacheLimit := flag.Int("cache-limit", 0, "per-module verdict memo cache entries (0 = default 1M, negative disables caching)")
	evictModules := flag.Bool("evict-modules", false, "evict the least-recently-queried module when the registry is full instead of refusing the upload")
	buildWorkers := flag.Int("build-workers", service.DefaultBuildWorkers, "async module-build workers (POST /v1/modules?async=1)")
	planner := flag.Bool("planner", true, "compile per-module alias indexes and answer batches through the sweep-line planner (false = legacy per-pair chain walks)")
	flag.Parse()

	svc := service.New(service.Config{
		MaxBatch:       *maxBatch,
		MaxSourceBytes: *maxSource,
		MaxModules:     *maxModules,
		Parallel:       *parallel,
		CacheLimit:     *cacheLimit,
		EvictModules:   *evictModules,
		BuildWorkers:   *buildWorkers,
		DisablePlanner: !*planner,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("aliasd: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("aliasd: writing portfile: %v", err)
		}
	}
	fmt.Printf("aliasd: listening on %s\n", bound)
	if err := http.Serve(ln, svc.Handler()); err != nil {
		log.Fatalf("aliasd: serve: %v", err)
	}
}
