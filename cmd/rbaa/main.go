// Command rbaa runs the symbolic-range-based alias analysis pipeline on a
// MiniC source file (.mc) or a textual IR file (.ir):
//
//	rbaa prog.mc                       # compile, analyze, print summary
//	rbaa -dump ir prog.mc              # print the e-SSA IR
//	rbaa -dump gr prog.mc              # print GR(v) for every pointer
//	rbaa -dump lr prog.mc              # print LR(v) for every pointer
//	rbaa -dump ranges prog.mc          # print R(v) for every integer
//	rbaa -queries prog.mc              # run all pair queries, per-analysis table
//	rbaa -query prepare.i1,prepare.e prog.mc   # one query with attribution
//
// Use "-" as the file to read from stdin (with -format minic or ir).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/alias/rbaa"
	"repro/internal/experiments"
	"repro/internal/frontend/minic"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/stats"
)

func main() {
	format := flag.String("format", "", "input format: minic or ir (default: by extension)")
	dump := flag.String("dump", "", "dump: ir, gr, lr, ranges, dot")
	queries := flag.Bool("queries", false, "run all pointer-pair queries and summarize")
	query := flag.String("query", "", "answer one query: func.name,func.name")
	parallel := flag.Int("parallel", 1, "worker count for the pair-summary sweep (default and -queries modes; -1 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rbaa [flags] <file.mc|file.ir|->")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *format, *dump, *queries, *query, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "rbaa:", err)
		os.Exit(1)
	}
}

func run(path, format, dump string, queries bool, query string, parallel int) error {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	if format == "" {
		switch {
		case strings.HasSuffix(path, ".ir"):
			format = "ir"
		default:
			format = "minic"
		}
	}

	var m *ir.Module
	switch format {
	case "minic":
		m, err = minic.Compile(strings.TrimSuffix(path, ".mc"), string(src))
	case "ir":
		m, err = ir.Parse(string(src))
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}

	// The dump/-query paths need the rbaa pipeline directly; the summary
	// path below builds its own analyses inside RunPrecision, so construct
	// lazily to avoid analyzing large modules twice.
	analyze := func() *rbaa.Analysis { return rbaa.New(m, pointer.Options{}) }

	switch dump {
	case "ir":
		ir.Print(os.Stdout, m)
		return nil
	case "dot":
		for _, f := range m.Funcs {
			ir.WriteDot(os.Stdout, f)
		}
		return nil
	case "gr":
		a := analyze()
		for _, f := range m.Funcs {
			fmt.Printf("func %s:\n", f.Name)
			for _, v := range f.Values() {
				if v.Typ == ir.TPtr {
					fmt.Printf("  GR(%s) = %s\n", v.Name, a.GR.Value(v))
				}
			}
		}
		return nil
	case "lr":
		a := analyze()
		for _, f := range m.Funcs {
			fmt.Printf("func %s:\n", f.Name)
			for _, v := range f.Values() {
				if v.Typ == ir.TPtr {
					fmt.Printf("  LR(%s) = %s\n", v.Name, a.LR.String(v))
				}
			}
		}
		return nil
	case "ranges":
		a := analyze()
		for _, f := range m.Funcs {
			fmt.Printf("func %s:\n", f.Name)
			for _, v := range f.Values() {
				if v.Typ == ir.TInt {
					fmt.Printf("  R(%s) = %s\n", v.Name, a.R.Range(v))
				}
			}
		}
		return nil
	case "":
	default:
		return fmt.Errorf("unknown -dump %q", dump)
	}

	if query != "" {
		parts := strings.Split(query, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-query wants func.name,func.name")
		}
		p, err := lookup(m, strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		q, err := lookup(m, strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		a := analyze()
		ans, why := a.Query(p, q)
		fmt.Printf("%s vs %s: %s", parts[0], parts[1], ans)
		if ans == pointer.NoAlias {
			fmt.Printf(" (%s)", why)
		}
		fmt.Println()
		fmt.Printf("  GR(%s) = %s\n", parts[0], a.GR.Value(p))
		fmt.Printf("  GR(%s) = %s\n", parts[1], a.GR.Value(q))
		fmt.Printf("  LR(%s) = %s\n", parts[0], a.LR.String(p))
		fmt.Printf("  LR(%s) = %s\n", parts[1], a.LR.String(q))
		return nil
	}

	// Default / -queries: per-analysis summary over all pairs, evaluated by
	// the experiments driver (chunked across -parallel workers; the table
	// is byte-identical for every worker count).
	row := (&experiments.Driver{Parallel: parallel}).RunPrecision(m.Name, m)
	t := stats.NewTable("analysis", "#noalias", "%of queries")
	for _, e := range []struct {
		name string
		n    int
	}{{"scev", row.Scev}, {"basic", row.Basic}, {"rbaa", row.Rbaa}, {"r+b", row.RplusB}} {
		t.Row(e.name, e.n, stats.Pct(e.n, row.Queries))
	}
	fmt.Printf("%s: %d pointer-pair queries\n\n", m.Name, row.Queries)
	t.Write(os.Stdout)
	if queries {
		fmt.Printf("\nrbaa attribution: disjoint-support %d, global-range %d, local-range %d\n",
			row.Disjoint, row.Global, row.Local)
	}
	return nil
}

func lookup(m *ir.Module, qualified string) (*ir.Value, error) {
	dot := strings.Index(qualified, ".")
	if dot < 0 {
		return nil, fmt.Errorf("value %q not qualified (want func.name)", qualified)
	}
	f := m.Func(qualified[:dot])
	if f == nil {
		return nil, fmt.Errorf("unknown function %q", qualified[:dot])
	}
	name := qualified[dot+1:]
	for _, v := range f.Values() {
		if v.Name == name {
			return v, nil
		}
	}
	return nil, fmt.Errorf("no value %q in %q", name, qualified[:dot])
}
