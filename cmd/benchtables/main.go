// Command benchtables regenerates the paper's evaluation tables and figures
// on the synthetic benchmark suites:
//
//	benchtables -fig 13    # precision comparison (Fig. 13)
//	benchtables -fig 14    # global-test attribution (Fig. 14)
//	benchtables -fig 15    # scalability / linearity (Fig. 15)
//	benchtables -fig ratio # §5 symbolic-only pointer ratio
//	benchtables -fig all   # everything
//
// -parallel N fans benchmarks and query chunks out over N workers (the
// tables are byte-identical for every N). Fig. 15 is the exception: it is
// a timing experiment and always runs sequentially so the reported numbers
// cannot be distorted by CPU contention. -xl appends the two extra-large
// scalability programs to the Fig. 15 suite.
//
// -json replaces the text tables with one machine-readable report (the
// experiments.Report schema) covering the selected figures — the format
// bench-tracking tooling and cmd/aliasload consumers parse.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchgen"
	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 13, 14, 15, ratio, all")
	scalePrograms := flag.Int("scale-programs", 50, "number of programs in the Fig. 15 suite")
	parallel := flag.Int("parallel", 1, "worker count for fig 13/14/ratio (-1 = GOMAXPROCS); fig 15 timing always runs sequentially")
	xl := flag.Bool("xl", false, "append the extra-large (≥1.9M instruction) programs to Fig. 15")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON report instead of text tables")
	analysisBench := flag.Bool("analysis-bench", false, "run the analysis-core benchmark mode and emit the BENCH_analysis.json report (ignores -fig)")
	out := flag.String("out", "", "write the -analysis-bench report to this file instead of stdout")
	indexed := flag.Bool("indexed", true, "answer the precision sweeps through each module's compiled alias index (verdict-identical; false walks the chain per pair)")
	flag.Parse()

	d := &experiments.Driver{Parallel: *parallel, Indexed: *indexed}

	if *analysisBench {
		rep := d.RunAnalysisBench()
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := experiments.WriteAnalysisJSON(w, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		return
	}

	needPrecision := *fig == "13" || *fig == "14" || *fig == "ratio" || *fig == "all"
	var rows []experiments.PrecisionRow
	if needPrecision {
		rows = d.RunFig13Suite()
	}

	runScale := func() []experiments.ScaleRow {
		cfgs := benchgen.ScalabilityConfigs(*scalePrograms)
		if *xl {
			cfgs = append(cfgs, benchgen.XLScalabilityConfigs()...)
		}
		return d.RunScale(cfgs)
	}

	if *asJSON {
		var scale []experiments.ScaleRow
		switch *fig {
		case "13", "14", "ratio":
		case "15":
			scale = runScale()
		case "all":
			scale = runScale()
		default:
			fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
			os.Exit(2)
		}
		if err := experiments.WriteJSON(os.Stdout, experiments.BuildReport(rows, scale)); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		return
	}

	switch *fig {
	case "13":
		experiments.RenderFig13(os.Stdout, rows)
	case "14":
		experiments.RenderFig14(os.Stdout, rows)
	case "ratio":
		experiments.RenderRatio(os.Stdout, rows)
	case "15":
		experiments.RenderFig15(os.Stdout, runScale())
	case "all":
		fmt.Println("=== Fig. 13: precision comparison ===")
		experiments.RenderFig13(os.Stdout, rows)
		fmt.Println("\n=== Fig. 14: queries solved by the global test ===")
		experiments.RenderFig14(os.Stdout, rows)
		fmt.Println("\n=== §5: symbolic-only pointer ratio ===")
		experiments.RenderRatio(os.Stdout, rows)
		fmt.Println("\n=== Fig. 15: scalability ===")
		experiments.RenderFig15(os.Stdout, runScale())
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
}
