// Command benchtables regenerates the paper's evaluation tables and figures
// on the synthetic benchmark suites:
//
//	benchtables -fig 13    # precision comparison (Fig. 13)
//	benchtables -fig 14    # global-test attribution (Fig. 14)
//	benchtables -fig 15    # scalability / linearity (Fig. 15)
//	benchtables -fig ratio # §5 symbolic-only pointer ratio
//	benchtables -fig all   # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 13, 14, 15, ratio, all")
	scalePrograms := flag.Int("scale-programs", 50, "number of programs in the Fig. 15 suite")
	flag.Parse()

	needPrecision := *fig == "13" || *fig == "14" || *fig == "ratio" || *fig == "all"
	var rows []experiments.PrecisionRow
	if needPrecision {
		rows = experiments.RunFig13Suite()
	}

	switch *fig {
	case "13":
		experiments.RenderFig13(os.Stdout, rows)
	case "14":
		experiments.RenderFig14(os.Stdout, rows)
	case "ratio":
		experiments.RenderRatio(os.Stdout, rows)
	case "15":
		experiments.RenderFig15(os.Stdout, experiments.RunFig15(*scalePrograms))
	case "all":
		fmt.Println("=== Fig. 13: precision comparison ===")
		experiments.RenderFig13(os.Stdout, rows)
		fmt.Println("\n=== Fig. 14: queries solved by the global test ===")
		experiments.RenderFig14(os.Stdout, rows)
		fmt.Println("\n=== §5: symbolic-only pointer ratio ===")
		experiments.RenderRatio(os.Stdout, rows)
		fmt.Println("\n=== Fig. 15: scalability ===")
		experiments.RenderFig15(os.Stdout, experiments.RunFig15(*scalePrograms))
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
}
