package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/benchgen"
	"repro/internal/service"
)

// restartReport is the crash-recovery drill's section of the JSON artifact.
type restartReport struct {
	// Modules uploaded and golden-queried before the kill.
	ModulesUploaded int `json:"modules_uploaded"`
	// ChurnUploads issued (best-effort) while the SIGKILL landed.
	ChurnUploads int `json:"churn_uploads"`
	// ModulesRecovered that answered queries after the restart.
	ModulesRecovered int `json:"modules_recovered"`
	// VerdictsIdentical: every recovered module's post-restart query
	// response was byte-for-byte its pre-kill golden.
	VerdictsIdentical bool    `json:"verdicts_identical"`
	RecoverySeconds   float64 `json:"recovery_seconds"`
	StoreRecords      int     `json:"store_records"`
	Quarantined       int64   `json:"quarantined"`
	FunctionsReused   int64   `json:"functions_reused"`
	// CountersReconcile: /v1/stats store figures equal the aliasd_store_*
	// metric families on the restarted daemon.
	CountersReconcile bool `json:"counters_reconcile"`
}

// daemon is one spawned aliasd process under the drill's control.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon spawns the aliasd binary against dataDir on a random port and
// waits for the portfile. The daemon inherits our stderr so its logs land
// in the drill's output.
func startDaemon(bin, dataDir, portfile string, extra ...string) (*daemon, error) {
	os.Remove(portfile)
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-portfile", portfile,
		"-data-dir", dataDir,
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		b, err := os.ReadFile(portfile)
		if err == nil && len(bytes.TrimSpace(b)) > 0 {
			return &daemon{cmd: cmd, base: "http://" + string(bytes.TrimSpace(b))}, nil
		}
		if cmd.ProcessState != nil {
			return nil, fmt.Errorf("daemon exited before binding")
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			return nil, fmt.Errorf("daemon never wrote %s", portfile)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill9 delivers the real thing — SIGKILL, no cleanup, no flush — and reaps
// the process.
func (d *daemon) kill9() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// runRestart is the crash-recovery drill: spawn aliasd with -data-dir,
// upload modules and record golden verdict bytes, SIGKILL the daemon while
// churn uploads are in flight, restart it against the same directory, wait
// for /readyz, and assert the recovered daemon returns bit-identical
// verdicts with a clean (zero-quarantine) store whose /v1/stats figures
// reconcile with the aliasd_store_* metric families.
func runRestart(cfg loadConfig) error {
	if cfg.daemonBin == "" {
		return fmt.Errorf("-scenario restart needs -daemon-bin (path to an aliasd binary)")
	}
	dataDir := cfg.dataDir
	if dataDir == "" {
		d, err := os.MkdirTemp("", "aliasload-restart-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dataDir = d
	}
	portfile := filepath.Join(dataDir, "addr.txt")
	client := &http.Client{Timeout: 60 * time.Second}

	d1, err := startDaemon(cfg.daemonBin, dataDir, portfile)
	if err != nil {
		return err
	}
	defer d1.kill9()
	if err := checkHealth(client, d1.base); err != nil {
		return err
	}

	// Upload and golden-query: one full-enumeration (capped at -batch)
	// request per module, response bytes kept verbatim.
	configs := benchgen.Fig13Configs()
	n := cfg.modules
	if n < 1 {
		n = 1
	}
	if n > len(configs) {
		n = len(configs)
	}
	goldens := map[string][]byte{}
	var modNames []string
	for _, bc := range configs[:n] {
		m := benchgen.Generate(bc)
		pairs := namedPairs(m)
		if len(pairs) > cfg.batch {
			pairs = pairs[:cfg.batch]
		}
		url := fmt.Sprintf("%s/v1/modules?name=%s&format=ir", d1.base, bc.Name)
		resp, err := client.Post(url, "text/plain", strings.NewReader(m.String()))
		if err != nil {
			return fmt.Errorf("uploading %s: %w", bc.Name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("uploading %s: status %d", bc.Name, resp.StatusCode)
		}
		got, code, err := queryRaw(client, d1.base, bc.Name, pairs)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("golden query %s: status %d err %v", bc.Name, code, err)
		}
		goldens[bc.Name] = got
		modNames = append(modNames, bc.Name)
	}

	// Churn: re-upload fresh names in a loop and SIGKILL the daemon while
	// they are in flight — the torn-write window the store must survive.
	churnSrc := benchgen.Generate(configs[0]).String()
	churn := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			url := fmt.Sprintf("%s/v1/modules?name=restartchurn%d&format=ir", d1.base, i)
			resp, err := client.Post(url, "text/plain", strings.NewReader(churnSrc))
			if err != nil {
				return // daemon died mid-request: exactly the point
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			churn++
		}
	}()
	time.Sleep(150 * time.Millisecond)
	d1.kill9()
	<-done

	// Restart over the same directory; recovery replays the manifest
	// before /readyz goes ready, so checkHealth doubles as the recovery
	// barrier.
	d2, err := startDaemon(cfg.daemonBin, dataDir, portfile)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer d2.kill9()
	if err := checkHealth(client, d2.base); err != nil {
		return fmt.Errorf("restarted daemon never became ready: %w", err)
	}

	rr := restartReport{ModulesUploaded: n, ChurnUploads: churn, VerdictsIdentical: true}
	for _, bc := range configs[:n] {
		m := benchgen.Generate(bc)
		pairs := namedPairs(m)
		if len(pairs) > cfg.batch {
			pairs = pairs[:cfg.batch]
		}
		got, code, err := queryRaw(client, d2.base, bc.Name, pairs)
		if err != nil {
			return fmt.Errorf("post-restart query %s: %w", bc.Name, err)
		}
		if code != http.StatusOK {
			rr.VerdictsIdentical = false
			fmt.Fprintf(os.Stderr, "aliasload[restart]: module %s not recovered (status %d)\n", bc.Name, code)
			continue
		}
		rr.ModulesRecovered++
		if !bytes.Equal(got, goldens[bc.Name]) {
			rr.VerdictsIdentical = false
			fmt.Fprintf(os.Stderr, "aliasload[restart]: module %s verdicts differ after restart\n", bc.Name)
		}
	}

	// Counter reconciliation: the same store figures on both surfaces.
	resp, err := client.Get(d2.base + "/v1/stats")
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	var st service.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Store == nil {
		return fmt.Errorf("restarted daemon reports no store section on /v1/stats")
	}
	rr.RecoverySeconds = st.Store.RecoverySeconds
	rr.StoreRecords = st.Store.Records
	rr.Quarantined = st.Store.Quarantined
	rr.FunctionsReused = st.Store.FunctionsReused
	rr.CountersReconcile =
		scrapeGauge(client, d2.base, "aliasd_store_records", nil) == float64(st.Store.Records) &&
			scrapeGauge(client, d2.base, "aliasd_store_corrupt_quarantined_total", nil) == float64(st.Store.Quarantined) &&
			scrapeGauge(client, d2.base, "aliasd_store_recovery_duration_seconds", nil) > 0

	fmt.Printf("aliasload[restart]: %d modules uploaded, %d churn uploads, killed -9, %d recovered\n",
		rr.ModulesUploaded, rr.ChurnUploads, rr.ModulesRecovered)
	fmt.Printf("  recovery:    %.4fs, %d store records, %d quarantined, %d functions reused\n",
		rr.RecoverySeconds, rr.StoreRecords, rr.Quarantined, rr.FunctionsReused)
	fmt.Printf("  verdicts:    identical=%v  counters reconcile=%v\n", rr.VerdictsIdentical, rr.CountersReconcile)

	if cfg.out != "" {
		b, err := json.MarshalIndent(struct {
			Scenario string         `json:"scenario"`
			Restart  *restartReport `json:"restart"`
		}{"restart", &rr}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  report:      %s\n", cfg.out)
	}

	switch {
	case rr.ModulesRecovered != rr.ModulesUploaded:
		return fmt.Errorf("recovered %d of %d modules", rr.ModulesRecovered, rr.ModulesUploaded)
	case !rr.VerdictsIdentical:
		return fmt.Errorf("post-restart verdicts differ from pre-kill goldens")
	case rr.Quarantined != 0:
		return fmt.Errorf("%d records quarantined by a clean kill (torn write escaped the protocol)", rr.Quarantined)
	case rr.RecoverySeconds <= 0:
		return fmt.Errorf("recovery duration is zero: replay never ran")
	case !rr.CountersReconcile:
		return fmt.Errorf("store counters disagree between /v1/stats and /metrics")
	}
	return nil
}

// queryRaw posts one batch and returns the raw response bytes — the unit
// the drill byte-compares across the crash.
func queryRaw(client *http.Client, base, module string, pairs []service.Pair) ([]byte, int, error) {
	body, err := json.Marshal(service.QueryRequest{Module: module, Pairs: pairs})
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return b, resp.StatusCode, nil
}
