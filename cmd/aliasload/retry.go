package main

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// retryStats is the client-side backpressure ledger every report carries:
// how often the server shed us, how often a retry recovered, and how often
// we gave up. Non-zero sheds against a budget-constrained daemon are
// expected behavior — the numbers quantify the retry contract, they are not
// failures.
type retryStats struct {
	Retries        int64 `json:"retries"`
	Sheds          int64 `json:"sheds"`
	RetrySuccesses int64 `json:"retry_successes"`
	GiveUps        int64 `json:"give_ups"`
}

// retryClient wraps an http.Client with the backpressure contract aliasd
// speaks: 429 and 503 responses are retried with capped exponential backoff
// plus jitter, honoring the server's Retry-After hint when it names a
// longer wait. Any other status — success or hard error — is returned to
// the caller on the first attempt.
type retryClient struct {
	c           *http.Client
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration

	mu  sync.Mutex
	rng *rand.Rand

	retries        atomic.Int64
	sheds          atomic.Int64
	retrySuccesses atomic.Int64
	giveUps        atomic.Int64
}

func newRetryClient(c *http.Client, maxAttempts int) *retryClient {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	return &retryClient{
		c:           c,
		maxAttempts: maxAttempts,
		baseDelay:   50 * time.Millisecond,
		maxDelay:    2 * time.Second,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (rc *retryClient) stats() retryStats {
	return retryStats{
		Retries:        rc.retries.Load(),
		Sheds:          rc.sheds.Load(),
		RetrySuccesses: rc.retrySuccesses.Load(),
		GiveUps:        rc.giveUps.Load(),
	}
}

// shedStatus reports whether the status is a backpressure rejection the
// server wants retried.
func shedStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// retryAfterOf parses the response's Retry-After header (delay-seconds
// form; aliasd always sends that shape). 0 when absent or unparseable.
func retryAfterOf(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 0
}

// delay computes the wait before the next attempt: exponential backoff from
// baseDelay, raised to the server's Retry-After when that is longer, capped
// at maxDelay, plus up to 25% random jitter so synchronized clients
// desynchronize instead of re-stampeding the recovered server.
func (rc *retryClient) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := rc.baseDelay << uint(attempt-1)
	if retryAfter > d {
		d = retryAfter
	}
	if d > rc.maxDelay {
		d = rc.maxDelay
	}
	rc.mu.Lock()
	j := time.Duration(rc.rng.Int63n(int64(d)/4 + 1))
	rc.mu.Unlock()
	return d + j
}

// post issues the request, retrying shed responses up to maxAttempts. The
// returned response — first success, first hard error, or the final shed
// after giving up — has an open body the caller must drain and close.
func (rc *retryClient) post(url, contentType string, body []byte) (*http.Response, error) {
	shedSeen := false
	for attempt := 1; ; attempt++ {
		resp, err := rc.c.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if !shedStatus(resp.StatusCode) {
			if shedSeen {
				rc.retrySuccesses.Add(1)
			}
			return resp, nil
		}
		rc.sheds.Add(1)
		shedSeen = true
		if attempt >= rc.maxAttempts {
			rc.giveUps.Add(1)
			return resp, nil
		}
		ra := retryAfterOf(resp)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rc.retries.Add(1)
		time.Sleep(rc.delay(attempt, ra))
	}
}

// del issues a DELETE with the same retry policy as post.
func (rc *retryClient) del(url string) (*http.Response, error) {
	shedSeen := false
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(http.MethodDelete, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := rc.c.Do(req)
		if err != nil {
			return nil, err
		}
		if !shedStatus(resp.StatusCode) {
			if shedSeen {
				rc.retrySuccesses.Add(1)
			}
			return resp, nil
		}
		rc.sheds.Add(1)
		shedSeen = true
		if attempt >= rc.maxAttempts {
			rc.giveUps.Add(1)
			return resp, nil
		}
		ra := retryAfterOf(resp)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rc.retries.Add(1)
		time.Sleep(rc.delay(attempt, ra))
	}
}
