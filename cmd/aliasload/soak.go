package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/benchgen"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// soakReport is the soak scenario's section of the JSON artifact: cycle
// accounting, the RSS flatness figures the scenario asserts, and the
// server-side budget counters accumulated over the run.
type soakReport struct {
	Cycles    int `json:"cycles"`
	Completed int `json:"completed"`
	// SkippedCycles counts cycles whose upload was shed past the retry
	// budget — expected under a tight -mem-budget, never an error.
	SkippedCycles int `json:"skipped_cycles"`
	// Reuploads counts resident modules re-registered after the budget
	// governor evicted them out from under a query (the 404 path).
	Reuploads int `json:"reuploads"`
	// ShedQueries counts query batches dropped after exhausting retries.
	ShedQueries int `json:"shed_queries"`
	// UnexpectedStatuses counts responses outside the documented surface
	// (2xx, 404 on evicted modules, 429/503 sheds). Must be zero.
	UnexpectedStatuses int `json:"unexpected_statuses"`

	RSSStartBytes  int64   `json:"rss_start_bytes"`
	RSSEndBytes    int64   `json:"rss_end_bytes"`
	RSSRatio       float64 `json:"rss_ratio"`
	HeapStartBytes int64   `json:"heap_start_bytes"`
	HeapEndBytes   int64   `json:"heap_end_bytes"`

	// Server-side deltas over the measured window, from /v1/stats.
	ServerSheds        map[string]int64 `json:"server_sheds"`
	ServerEvictions    int64            `json:"server_budget_evictions"`
	ServerCacheShrinks int64            `json:"server_cache_shrinks"`
	BudgetState        string           `json:"budget_state"`
}

// scrapeGauge reads one sample of a /metrics family (first sample matching
// the label subset); 0 when the endpoint, family or sample is absent.
func scrapeGauge(client *http.Client, base, family string, labels map[string]string) float64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return 0
	}
	fams, err := telemetry.Parse(string(b))
	if err != nil {
		return 0
	}
	f := telemetry.FindFamily(fams, family)
	if f == nil {
		return 0
	}
	for _, s := range f.Samples {
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return 0
}

// fetchBudget reads the /v1/stats budget section.
func fetchBudget(client *http.Client, base string) (service.BudgetStats, error) {
	var st service.StatsResponse
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st.Budget, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st.Budget, err
	}
	return st.Budget, nil
}

// runSoak is the robustness workload: -cycles upload/query/delete cycles
// against a (typically budget-constrained, chaos-injected) daemon, driven
// entirely through the retrying client, so every 429/503 becomes a backoff
// and a retry rather than a failure. Resident modules stay registered as
// the budget governor's eviction victims; a query that finds one evicted
// (404) re-uploads it and carries on. The first fifth of the cycles is
// warmup: the RSS flatness assertion compares the post-warmup plateau to
// the end of the run, and fails the process when end > -rss-max-ratio ×
// start. Any status outside the documented surface also fails the run.
func runSoak(cfg loadConfig) error {
	base := "http://" + cfg.addr
	client := &http.Client{Timeout: 120 * time.Second}
	rc := newRetryClient(client, cfg.attempts)
	if err := checkHealth(client, base); err != nil {
		return err
	}

	// Residents: the smallest Fig. 13 program under distinct names. Small
	// on purpose — cycle churn, not resident bulk, must dominate the memory
	// the governor manages.
	type soakTarget struct {
		name  string
		pairs []service.Pair
		src   []byte
	}
	resCfg := smallestFig13()
	var residents []soakTarget
	var modNames []string
	for i := 0; i < cfg.modules; i++ {
		c := resCfg
		c.Name = fmt.Sprintf("soak-res-%d", i)
		m := benchgen.Generate(c)
		tgt := soakTarget{name: c.Name, pairs: namedPairs(m), src: []byte(m.String())}
		if err := soakUpload(rc, base, tgt.name, tgt.src); err != nil {
			return fmt.Errorf("resident %s: %w", tgt.name, err)
		}
		residents = append(residents, tgt)
		modNames = append(modNames, tgt.name)
	}
	churn := benchgen.Generate(resCfg)
	churnSrc := []byte(churn.String())
	churnPairs := namedPairs(churn)
	if len(churnPairs) > cfg.batch {
		churnPairs = churnPairs[:cfg.batch]
	}

	warmup := cfg.cycles / 5
	if warmup < 2 {
		warmup = 2
	}
	var (
		sk           soakReport
		latencies    []time.Duration
		noAlias      int64
		totalQueries int
		measuredAt   time.Time
		budget0      service.BudgetStats
	)
	sk.Cycles = cfg.cycles
	start := time.Now()
	for cycle := 0; cycle < cfg.cycles; cycle++ {
		if cycle == warmup {
			// The plateau snapshot: everything before this point (module
			// builds, first chaos spikes, cache fill) is warmup.
			sk.RSSStartBytes = int64(scrapeGauge(client, base, "aliasd_process_rss_bytes", nil))
			sk.HeapStartBytes = int64(scrapeGauge(client, base, "aliasd_budget_bytes", map[string]string{"kind": "heap"}))
			budget0, _ = fetchBudget(client, base)
			measuredAt = time.Now()
		}
		measured := cycle >= warmup

		// Upload this cycle's churn module. A shed that survives the retry
		// budget skips the cycle; the daemon said "not now" and the client
		// honors it.
		name := fmt.Sprintf("soak-c%d", cycle)
		resp, err := rc.post(fmt.Sprintf("%s/v1/modules?name=%s&format=ir", base, name), "text/plain", churnSrc)
		if err != nil {
			return fmt.Errorf("cycle %d upload: %w", cycle, err)
		}
		code := drainStatus(resp)
		switch {
		case code == http.StatusCreated:
		case shedStatus(code):
			sk.SkippedCycles++
			continue
		default:
			sk.UnexpectedStatuses++
			continue
		}

		// Query the fresh module and one resident (round-robin). Residents
		// may have been evicted by the governor: 404 → re-upload once.
		res := residents[cycle%len(residents)]
		for _, target := range []soakTarget{{name: name, pairs: churnPairs, src: churnSrc}, res} {
			pairs := target.pairs
			if len(pairs) > cfg.batch {
				pairs = pairs[:cfg.batch]
			}
			body, _ := json.Marshal(service.QueryRequest{Module: target.name, Pairs: pairs})
			for attempt := 0; ; attempt++ {
				t0 := time.Now()
				qresp, err := rc.post(base+"/v1/query", "application/json", body)
				if err != nil {
					return fmt.Errorf("cycle %d query %s: %w", cycle, target.name, err)
				}
				var qr struct {
					NoAlias int64 `json:"noalias"`
				}
				decErr := json.NewDecoder(qresp.Body).Decode(&qr)
				io.Copy(io.Discard, qresp.Body)
				qresp.Body.Close()
				if qresp.StatusCode == http.StatusOK && decErr == nil {
					if measured {
						latencies = append(latencies, time.Since(t0))
					}
					totalQueries += len(pairs)
					noAlias += qr.NoAlias
					break
				}
				if qresp.StatusCode == http.StatusNotFound {
					if attempt == 0 {
						// Evicted under budget pressure: re-register, retry.
						if err := soakUpload(rc, base, target.name, target.src); err == nil {
							sk.Reuploads++
							continue
						}
					}
					// Re-upload shed, or the governor evicted the module
					// again before the retry landed: drop this batch.
					sk.ShedQueries++
					break
				}
				if shedStatus(qresp.StatusCode) {
					sk.ShedQueries++
					break
				}
				sk.UnexpectedStatuses++
				break
			}
		}

		// Delete the churn module; 404 is fine (the governor got there
		// first), a shed past retries leaves it for the governor to evict.
		dresp, err := rc.del(base + "/v1/modules/" + name)
		if err != nil {
			return fmt.Errorf("cycle %d delete: %w", cycle, err)
		}
		code = drainStatus(dresp)
		if code != http.StatusNoContent && code != http.StatusNotFound && !shedStatus(code) {
			sk.UnexpectedStatuses++
		}
		sk.Completed++
	}
	wall := time.Since(start)
	measuredWall := wall
	if !measuredAt.IsZero() {
		measuredWall = time.Since(measuredAt)
	}

	sk.RSSEndBytes = int64(scrapeGauge(client, base, "aliasd_process_rss_bytes", nil))
	sk.HeapEndBytes = int64(scrapeGauge(client, base, "aliasd_budget_bytes", map[string]string{"kind": "heap"}))
	if sk.RSSStartBytes > 0 {
		sk.RSSRatio = float64(sk.RSSEndBytes) / float64(sk.RSSStartBytes)
	}
	if budget1, err := fetchBudget(client, base); err == nil {
		sk.BudgetState = budget1.State
		sk.ServerEvictions = budget1.Evictions - budget0.Evictions
		sk.ServerCacheShrinks = budget1.CacheShrinks - budget0.CacheShrinks
		sk.ServerSheds = map[string]int64{}
		for reason, n := range budget1.Sheds {
			sk.ServerSheds[reason] = n - budget0.Sheds[reason]
		}
	}

	rep := report{
		Timestamp:      start.UTC().Format(time.RFC3339),
		Scenario:       "soak",
		Addr:           cfg.addr,
		Modules:        modNames,
		Queries:        totalQueries,
		Requests:       len(latencies),
		Batch:          cfg.batch,
		Concurrency:    1,
		WallMS:         float64(wall.Microseconds()) / 1000.0,
		QPS:            float64(totalQueries) / measuredWall.Seconds(),
		RequestsPerSec: float64(len(latencies)) / measuredWall.Seconds(),
		LatencyMS:      percentiles(latencies),
		NoAlias:        noAlias,
		Retry:          rc.stats(),
		Soak:           &sk,
	}
	if err := emit(rep, cfg.out); err != nil {
		return err
	}
	// The scenario's own acceptance: no statuses outside the contract, and
	// a flat RSS plateau (skipped where the gauge is unavailable).
	if sk.UnexpectedStatuses > 0 {
		return fmt.Errorf("soak: %d responses outside the documented status surface", sk.UnexpectedStatuses)
	}
	if sk.RSSStartBytes > 0 && sk.RSSRatio > cfg.rssMaxRatio {
		return fmt.Errorf("soak: RSS grew %.3fx over the measured window (limit %.2fx): %d → %d bytes",
			sk.RSSRatio, cfg.rssMaxRatio, sk.RSSStartBytes, sk.RSSEndBytes)
	}
	return nil
}

// soakUpload registers a module through the retrying client, tolerating 409
// (already registered — reruns and re-upload races). A shed past the retry
// budget or any other status is the caller's error.
func soakUpload(rc *retryClient, base, name string, src []byte) error {
	resp, err := rc.post(fmt.Sprintf("%s/v1/modules?name=%s&format=ir", base, name), "text/plain", src)
	if err != nil {
		return err
	}
	code := drainStatus(resp)
	if code != http.StatusCreated && code != http.StatusConflict {
		return fmt.Errorf("upload %s: status %d", name, code)
	}
	return nil
}

// drainStatus drains and closes the body, returning the status code —
// keep-alive hygiene for the cycle loop's many small responses.
func drainStatus(resp *http.Response) int {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// smallestFig13 returns the smallest Fig. 13 benchmark config (fewest
// workers, then name order) — the soak's module template.
func smallestFig13() benchgen.Config {
	configs := benchgen.Fig13Configs()
	best := configs[0]
	for _, c := range configs[1:] {
		if c.Workers < best.Workers || (c.Workers == best.Workers && c.Name < best.Name) {
			best = c
		}
	}
	return best
}
