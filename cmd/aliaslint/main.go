// Command aliaslint runs the repository's custom static analyzers — see
// internal/lint — over the module, printing one line per finding and
// exiting non-zero when any survive.
//
// Usage:
//
//	go run ./cmd/aliaslint ./...
//	go run ./cmd/aliaslint -json ./...
//	go run ./cmd/aliaslint -nolintaudit ./...
//	go run ./cmd/aliaslint repro/internal/interval repro/internal/alias
//
// The argument "./..." (or no argument) analyzes every package below the
// module root. Findings print as
//
//	file:line:col: message (analyzer)
//
// or, with -json, as one JSON object per line carrying the analyzer,
// position, message, and suppression state (suppressed findings are included
// in JSON mode so dashboards can track the suppression debt; they never
// affect the exit code).
//
// Findings are suppressed by //nolint:aliaslint or //nolint:<analyzer>
// comments on the flagged line; every suppression must carry a
// justification tail ("//nolint:x // reason") or it is itself a finding.
// -nolintaudit additionally reports stale directives — suppressions that no
// longer silence anything — and exits non-zero on those too.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

var analyzers = []*lint.Analyzer{
	lint.InternerMix,
	lint.FrozenWrite,
	lint.HandleLeak,
	lint.CounterCopy,
	lint.LockOrder,
	lint.PinFlow,
	lint.CtxCancel,
	lint.MetricReg,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aliaslint:", err)
		os.Exit(2)
	}
}

// jsonDiag is the -json wire format: one object per line.
type jsonDiag struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("aliaslint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic (including suppressed ones)")
	audit := fs.Bool("nolintaudit", false, "also report stale //nolint directives that suppress nothing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()

	root, module, err := findModule()
	if err != nil {
		return err
	}

	var paths []string
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		paths, err = lint.FindPackages(root, module)
		if err != nil {
			return err
		}
	} else {
		for _, a := range args {
			switch {
			case strings.HasPrefix(a, "./"):
				rel := strings.TrimSuffix(strings.TrimPrefix(a, "./"), "/...")
				if rel == "" || rel == "." {
					paths = append(paths, module)
				} else {
					paths = append(paths, module+"/"+filepath.ToSlash(rel))
				}
			default:
				paths = append(paths, a)
			}
		}
	}

	// The lint package itself hosts the analyzers and their fixtures; its
	// documentation intentionally spells the annotations out, so skip it —
	// and skip this command for the same reason.
	filtered := paths[:0]
	for _, p := range paths {
		if p == module+"/internal/lint" || strings.HasPrefix(p, module+"/cmd/aliaslint") {
			continue
		}
		filtered = append(filtered, p)
	}
	paths = filtered

	loader := lint.NewLoader(root, module)
	prog, err := loader.Load(paths...)
	if err != nil {
		return err
	}
	res, err := lint.RunAll(prog, analyzers)
	if err != nil {
		return err
	}

	relPath := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *jsonOut {
		enc := json.NewEncoder(w)
		emit := func(d lint.Diagnostic, suppressed bool) {
			enc.Encode(jsonDiag{
				Analyzer:   d.Analyzer,
				File:       relPath(d.Pos.Filename),
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Message:    d.Message,
				Suppressed: suppressed,
			})
		}
		for _, d := range res.Diags {
			emit(d, false)
		}
		for _, d := range res.Suppressed {
			emit(d, true)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n",
				relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}

	failures := len(res.Diags)
	if *audit {
		for _, d := range lint.StaleDirectives(res, analyzers) {
			failures++
			if *jsonOut {
				json.NewEncoder(w).Encode(jsonDiag{
					Analyzer: "nolintaudit",
					File:     relPath(d.Pos.Filename),
					Line:     d.Pos.Line,
					Column:   d.Pos.Column,
					Message:  fmt.Sprintf("stale directive %s suppresses nothing; delete it", d),
				})
			} else {
				fmt.Fprintf(w, "%s:%d:%d: stale //nolint directive suppresses nothing; delete it (nolintaudit)\n",
					relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column)
			}
		}
	}
	w.Flush()
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "aliaslint: %d finding(s)\n", failures)
		os.Exit(1)
	}
	return nil
}

// findModule locates the enclosing go.mod upward from the working directory
// and returns its directory and module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
