// Command aliaslint runs the repository's custom static analyzers — see
// internal/lint — over the module, printing one line per finding and
// exiting non-zero when any survive.
//
// Usage:
//
//	go run ./cmd/aliaslint ./...
//	go run ./cmd/aliaslint repro/internal/interval repro/internal/alias
//
// The argument "./..." (or no argument) analyzes every package below the
// module root. Findings print as
//
//	file:line:col: message (analyzer)
//
// and are suppressed by //nolint:aliaslint or //nolint:<analyzer> comments
// on the flagged line.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

var analyzers = []*lint.Analyzer{
	lint.InternerMix,
	lint.FrozenWrite,
	lint.HandleLeak,
	lint.CounterCopy,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aliaslint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	root, module, err := findModule()
	if err != nil {
		return err
	}

	var paths []string
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		paths, err = lint.FindPackages(root, module)
		if err != nil {
			return err
		}
	} else {
		for _, a := range args {
			switch {
			case strings.HasPrefix(a, "./"):
				rel := strings.TrimSuffix(strings.TrimPrefix(a, "./"), "/...")
				if rel == "" || rel == "." {
					paths = append(paths, module)
				} else {
					paths = append(paths, module+"/"+filepath.ToSlash(rel))
				}
			default:
				paths = append(paths, a)
			}
		}
	}

	// The lint package itself hosts the analyzers and their fixtures; its
	// documentation intentionally spells the annotations out, so skip it —
	// and skip this command for the same reason.
	filtered := paths[:0]
	for _, p := range paths {
		if p == module+"/internal/lint" || strings.HasPrefix(p, module+"/cmd/aliaslint") {
			continue
		}
		filtered = append(filtered, p)
	}
	paths = filtered

	loader := lint.NewLoader(root, module)
	prog, err := loader.Load(paths...)
	if err != nil {
		return err
	}
	diags, err := lint.Run(prog, analyzers)
	if err != nil {
		return err
	}

	w := bufio.NewWriter(os.Stdout)
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	w.Flush()
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aliaslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// findModule locates the enclosing go.mod upward from the working directory
// and returns its directory and module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
